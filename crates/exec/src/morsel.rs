//! Morsel-driven parallel pipelines (paper §3.3/§8).
//!
//! The engine's earlier parallelism was two narrow shapes: the per-block
//! [`crate::exchange::Exchange`] map and the §8 partitioned index rollup.
//! This module generalizes both: a whole pipeline — scan →
//! kernel-pushed filter → partial aggregate — runs over *morsels*
//! (ranges of decompression blocks) claimed by a fixed pool of
//! work-stealing workers, followed by a deterministic merge phase.
//!
//! Determinism is the design constraint, not an afterthought: parallel
//! output must be **byte-identical** to the serial pipeline.
//!
//! * Pass-through pipelines reassemble blocks in morsel order. Morsels
//!   align on decompression-block boundaries, so each ranged scan emits
//!   exactly the blocks the whole scan would (see
//!   `block_ranges_partition_the_scan` in [`crate::scan`]).
//! * Hash-aggregate partials carry their groups in first-occurrence
//!   order; merging morsels in morsel order reproduces the serial
//!   insertion order exactly, and integer fold functions are
//!   associative and commutative so [`merge_acc`] is exact. Real sums
//!   are order-dependent — the planner declines parallelism for them.
//! * Ordered-aggregate partials are runs of contiguous groups,
//!   concatenated in morsel order with a boundary merge when the last
//!   group of one morsel continues into the next — the same contract
//!   `parallel_index` uses for the §8 rollup.
//!
//! The scheduler is deliberately simple: per-worker [`RangeDeque`]s of
//! contiguous morsel ids (one packed atomic word each — exhaustively
//! model-checked below), owner pops from the front, idle workers steal
//! from the back round-robin. No morsel is pushed after start, so
//! all-deques-empty is a safe termination condition. A panicking worker
//! poisons the run and drains every deque; the consumer then observes
//! the panic instead of a silent partial result.

use crate::aggregate::{
    domain_of, emit_blocks, final_value, fold, init_acc, merge_acc, output_schema, Acc, AggSpec,
    Domain,
};
use crate::block::{Block, Schema};
use crate::expr::{AggFunc, Expr};
use crate::handle::ColumnHandle;
use crate::hash::{GroupMap, HashStrategy, KeyPacking};
use crate::merged_scan::{MergedScan, MergedSource};
use crate::scan::TableScan;
use crate::tactical;
use crate::{Operator, BLOCK_ROWS};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Decompression blocks per morsel: large enough to amortize scheduling,
/// small enough to steal (~4 × 1024 rows at the default block size).
pub const MORSEL_BLOCKS: usize = 4;

/// A work-stealing deque over a contiguous range of morsel ids, packed
/// into one `AtomicU64` — `head` in the upper 32 bits, `tail` in the
/// lower; the pending morsels are `[head, tail)`.
///
/// Every operation is a single-word CAS, so the protocol is trivially
/// linearizable, and because ids are claimed monotonically (head only
/// grows, tail only shrinks toward it) there is no ABA window. The
/// exhaustive interleaving model in the tests walks every reachable
/// (head, tail) state under arbitrary pop/steal/drain orders and checks
/// each id is claimed exactly once.
pub struct RangeDeque {
    state: AtomicU64,
}

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    (u64::from(head)) << 32 | u64::from(tail)
}

#[inline]
fn unpack(s: u64) -> (u32, u32) {
    ((s >> 32) as u32, s as u32)
}

impl RangeDeque {
    /// A deque holding the pending ids `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> RangeDeque {
        debug_assert!(lo <= hi);
        RangeDeque {
            state: AtomicU64::new(pack(lo, hi)),
        }
    }

    /// Owner end: claim the front id, or `None` when empty.
    pub fn pop_front(&self) -> Option<u32> {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(s);
            if head >= tail {
                return None;
            }
            match self.state.compare_exchange_weak(
                s,
                pack(head + 1, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head),
                Err(cur) => s = cur,
            }
        }
    }

    /// Thief end: claim the back id, or `None` when empty.
    pub fn steal_back(&self) -> Option<u32> {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(s);
            if head >= tail {
                return None;
            }
            match self.state.compare_exchange_weak(
                s,
                pack(head, tail - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(tail - 1),
                Err(cur) => s = cur,
            }
        }
    }

    /// Claim everything that remains, returning the range `[lo, hi)`
    /// that was claimed (empty when nothing was pending). Used to shut
    /// a run down after a worker panic.
    pub fn drain(&self) -> (u32, u32) {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(s);
            if head >= tail {
                return (head, head);
            }
            match self.state.compare_exchange_weak(
                s,
                pack(tail, tail),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return (head, tail),
                Err(cur) => s = cur,
            }
        }
    }

    /// Owner end: extend the pending range by `n` ids past the current
    /// tail. Only meaningful before workers race on the deque (the
    /// scheduler seeds everything up front); still a CAS so the model
    /// can exercise push/steal interleavings.
    pub fn push_back(&self, n: u32) {
        let mut s = self.state.load(Ordering::Acquire);
        loop {
            let (head, tail) = unpack(s);
            match self.state.compare_exchange_weak(
                s,
                pack(head, tail + n),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(cur) => s = cur,
            }
        }
    }

    /// Pending ids.
    pub fn remaining(&self) -> u32 {
        let (head, tail) = unpack(self.state.load(Ordering::Acquire));
        tail.saturating_sub(head)
    }
}

/// Scheduler outcome for one morsel: which worker ran it, whether it was
/// stolen, and the payload the pipeline produced.
struct Done<T> {
    morsel: u32,
    out: T,
}

/// Run `nmorsels` tasks across `degree` workers with work stealing,
/// returning the per-morsel outputs in morsel order. `f` must be safe to
/// call from any worker. Propagates the first worker panic to the
/// caller after every worker has stopped.
pub(crate) fn run_morsels<T, F>(degree: usize, nmorsels: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let workers = degree.min(nmorsels).max(1);
    let timeline_on = tde_obs::timeline::enabled();
    if workers == 1 {
        return (0..nmorsels as u32)
            .map(|m| {
                let t0 = timeline_on.then(Instant::now);
                let v = f(m);
                if let Some(t0) = t0 {
                    tde_obs::timeline::morsel_span(0, m, false, t0);
                }
                v
            })
            .collect();
    }
    // Contiguous per-worker ranges: worker w owns morsels
    // [w*chunk, min((w+1)*chunk, n)).
    let chunk = nmorsels.div_ceil(workers);
    let deques: Vec<RangeDeque> = (0..workers)
        .map(|w| {
            let lo = (w * chunk).min(nmorsels) as u32;
            let hi = ((w + 1) * chunk).min(nmorsels) as u32;
            RangeDeque::new(lo, hi)
        })
        .collect();
    let poison: Mutex<Option<String>> = Mutex::new(None);
    let mut results: Vec<Done<T>> = Vec::with_capacity(nmorsels);
    let mut dispatched = 0u64;
    let mut stolen = 0u64;
    let mut busy: Vec<u64> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let deques = &deques;
                let poison = &poison;
                let f = &f;
                s.spawn(move || {
                    let mut out: Vec<Done<T>> = Vec::new();
                    let mut dispatched = 0u64;
                    let mut stolen = 0u64;
                    let started = Instant::now();
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        loop {
                            // Own front first; then steal round-robin
                            // from the other deques' backs.
                            let task = deques[w].pop_front().map(|m| (m, false)).or_else(|| {
                                (1..deques.len()).find_map(|d| {
                                    deques[(w + d) % deques.len()]
                                        .steal_back()
                                        .map(|m| (m, true))
                                })
                            });
                            let Some((m, was_stolen)) = task else { break };
                            dispatched += 1;
                            stolen += u64::from(was_stolen);
                            let t0 = timeline_on.then(Instant::now);
                            let v = f(m);
                            if let Some(t0) = t0 {
                                tde_obs::timeline::morsel_span(w as u32, m, was_stolen, t0);
                            }
                            out.push(Done { morsel: m, out: v });
                        }
                    }));
                    if let Err(p) = caught {
                        let msg = p
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                            .unwrap_or_else(|| "worker panicked".to_string());
                        let mut slot = poison.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(msg);
                        // Stop the run: claim everything still pending so
                        // the other workers exit their loops promptly.
                        for d in deques {
                            d.drain();
                        }
                    }
                    (out, dispatched, stolen, started.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        for h in handles {
            let (out, d, st, ns) = h.join().expect("worker panic was caught in-thread");
            results.extend(out);
            dispatched += d;
            stolen += st;
            busy.push(ns);
        }
    });
    if tde_obs::metrics::enabled() {
        let m = tde_obs::metrics::morsel_metrics();
        m.dispatched.add(dispatched);
        m.stolen.add(stolen);
        for ns in &busy {
            m.worker_busy_ns.observe(*ns);
        }
    }
    if let Some(msg) = poison.into_inner().unwrap_or_else(|e| e.into_inner()) {
        panic!("morsel worker panicked: {msg}");
    }
    // Morsel ids are unique, so the sort restores serial order exactly.
    results.sort_by_key(|d| d.morsel);
    debug_assert_eq!(results.len(), nmorsels, "lost or duplicated morsels");
    results.into_iter().map(|d| d.out).collect()
}

/// Whether `aggs` over `schema` merge exactly from per-morsel partials.
/// Integer/token/dict folds are associative and exact; Real sums are
/// order-dependent (f64 addition), so the planner must keep them serial.
pub fn merge_safe(schema: &Schema, aggs: &[AggSpec]) -> bool {
    !aggs
        .iter()
        .any(|a| a.func == AggFunc::Sum && domain_of(&schema.fields[a.col]) == Domain::Real)
}

/// What the pipeline computes over each morsel (and how partials merge).
#[derive(Clone)]
pub enum MorselPipeline {
    /// Scan (+ pushed filter): blocks pass through, reassembled in
    /// morsel order.
    Emit,
    /// Hash aggregate: per-morsel partials merged by group key, group
    /// order = serial insertion order.
    HashAgg {
        /// Group-key column indices into the source schema.
        group_cols: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Ordered (sandwiched) aggregate over grouped input: per-morsel
    /// runs concatenated with a boundary merge.
    OrderedAgg {
        /// Group-key column indices into the source schema.
        group_cols: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
    },
}

impl MorselPipeline {
    fn agg_parts(&self) -> Option<(&[usize], &[AggSpec])> {
        match self {
            MorselPipeline::Emit => None,
            MorselPipeline::HashAgg { group_cols, aggs }
            | MorselPipeline::OrderedAgg { group_cols, aggs } => Some((group_cols, aggs)),
        }
    }
}

/// The scan a morsel pipeline ranges over.
#[derive(Clone)]
pub enum MorselSource {
    /// Eager or paged columns, pre-resolved to handles (paged columns
    /// go through the buffer pool at resolve time; workers then read
    /// shared immutable segments).
    Table {
        /// The projected columns.
        handles: Vec<ColumnHandle>,
        /// Expand array-compressed columns to scalars at the scan.
        expand: bool,
    },
    /// A merge-on-read snapshot: base ranges plus one delta morsel.
    Merged {
        /// The snapshot.
        source: Arc<MergedSource>,
        /// Projected column indices into the snapshot schema.
        columns: Vec<usize>,
        /// Expand array-compressed columns to scalars at the scan.
        expand: bool,
    },
}

/// One morsel: base decompression blocks `[lo, hi)`, plus the delta leg
/// when `delta` (merged sources ride the delta with one morsel).
#[derive(Clone, Copy, Debug)]
struct MorselRange {
    lo: usize,
    hi: usize,
    delta: bool,
}

/// Per-morsel pipeline output.
enum MorselOut {
    Blocks(Vec<Block>),
    /// (group key, accumulators) in first-occurrence order within the
    /// morsel (hash) or contiguous-run order (ordered).
    Groups(Vec<(Vec<i64>, Vec<Acc>)>),
}

/// A full pipeline executed morsel-parallel: scan (eager, paged or
/// merged) → optional pushed predicate → optional partial aggregate,
/// with a deterministic merge phase. Output is byte-identical to the
/// serial pipeline; see the module docs for why.
pub struct MorselExec {
    source: MorselSource,
    predicate: Option<(Expr, bool)>,
    pipeline: MorselPipeline,
    degree: usize,
    schema: Schema,
    source_schema: Schema,
    domains: Vec<Domain>,
    strategy: HashStrategy,
    packing: Option<KeyPacking>,
    morsels: Vec<MorselRange>,
    output: Vec<Block>,
    next: usize,
    ran: bool,
}

impl MorselExec {
    /// Build a morsel pipeline. `predicate` is `(expr, force_fallback)`
    /// pushed into every ranged scan; `degree` is the worker count (1 =
    /// run on the calling thread, still through the same merge path).
    pub fn new(
        source: MorselSource,
        predicate: Option<(Expr, bool)>,
        pipeline: MorselPipeline,
        degree: usize,
    ) -> MorselExec {
        let source_schema = match &source {
            MorselSource::Table { handles, expand } => {
                Schema::new(handles.iter().map(|h| h.field(*expand)).collect())
            }
            MorselSource::Merged {
                source,
                columns,
                expand,
            } => MergedScan::new(Arc::clone(source), columns.clone(), *expand)
                .schema()
                .clone(),
        };
        let (schema, domains, strategy, packing) = match pipeline.agg_parts() {
            None => (
                source_schema.clone(),
                Vec::new(),
                HashStrategy::Collision,
                None,
            ),
            Some((group_cols, aggs)) => {
                let keys: Vec<_> = group_cols
                    .iter()
                    .map(|&c| &source_schema.fields[c])
                    .collect();
                let (strategy, packing) = tactical::choose_hash_strategy(&keys);
                let domains: Vec<Domain> = aggs
                    .iter()
                    .map(|a| domain_of(&source_schema.fields[a.col]))
                    .collect();
                // Real sums are not merge-safe (f64 addition is
                // order-dependent); the planner must decline these.
                debug_assert!(
                    !aggs
                        .iter()
                        .zip(&domains)
                        .any(|(a, d)| a.func == AggFunc::Sum && *d == Domain::Real),
                    "Sum over Real is not morsel-mergeable"
                );
                (
                    output_schema(&source_schema, group_cols, aggs),
                    domains,
                    strategy,
                    packing,
                )
            }
        };
        let morsels = Self::partition(&source);
        MorselExec {
            source,
            predicate,
            pipeline,
            degree: degree.max(1),
            schema,
            source_schema,
            domains,
            strategy,
            packing,
            morsels,
            output: Vec::new(),
            next: 0,
            ran: false,
        }
    }

    /// Split the source into morsels of [`MORSEL_BLOCKS`] decompression
    /// blocks (merged sources get the delta leg on one extra morsel).
    fn partition(source: &MorselSource) -> Vec<MorselRange> {
        let (rows, delta) = match source {
            MorselSource::Table { handles, .. } => (
                handles.iter().map(|h| h.col().len()).min().unwrap_or(0),
                false,
            ),
            MorselSource::Merged { source, .. } => (source.base_rows(), source.delta_rows() > 0),
        };
        let nblocks = (rows as usize).div_ceil(BLOCK_ROWS);
        let mut morsels = Vec::with_capacity(nblocks.div_ceil(MORSEL_BLOCKS) + 1);
        let mut at = 0;
        while at < nblocks {
            let hi = (at + MORSEL_BLOCKS).min(nblocks);
            morsels.push(MorselRange {
                lo: at,
                hi,
                delta: false,
            });
            at = hi;
        }
        if delta || morsels.is_empty() {
            morsels.push(MorselRange {
                lo: nblocks,
                hi: nblocks,
                delta: true,
            });
        }
        morsels
    }

    /// Morsel count (used by the planner's explain label and fallbacks).
    pub fn morsel_count(&self) -> usize {
        self.morsels.len()
    }

    /// The configured worker count.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Build the ranged scan for one morsel. Quiet variants everywhere:
    /// telemetry for the query is emitted once, not per morsel.
    fn build_leg(&self, m: MorselRange) -> Box<dyn Operator> {
        match &self.source {
            MorselSource::Table { handles, expand } => {
                let mut scan = TableScan::from_handles(handles.clone(), *expand);
                if let Some((p, ff)) = &self.predicate {
                    scan = scan.with_pushed_quiet(p.clone(), *ff);
                }
                Box::new(scan.with_block_range(m.lo, m.hi))
            }
            MorselSource::Merged {
                source,
                columns,
                expand,
            } => {
                let mut scan = MergedScan::new(Arc::clone(source), columns.clone(), *expand);
                if let Some((p, ff)) = &self.predicate {
                    scan = scan.with_pushed(p.clone(), *ff);
                }
                Box::new(scan.with_morsel_range(m.lo, m.hi, m.delta))
            }
        }
    }

    /// Run the pipeline over one morsel on the calling worker.
    fn run_morsel(&self, m: MorselRange) -> MorselOut {
        let mut op = self.build_leg(m);
        match &self.pipeline {
            MorselPipeline::Emit => {
                let mut blocks = Vec::new();
                while let Some(b) = op.next_block() {
                    blocks.push(b);
                }
                MorselOut::Blocks(blocks)
            }
            MorselPipeline::HashAgg { group_cols, aggs } => {
                let mut groups = GroupMap::new(self.strategy, self.packing.clone());
                let mut accs: Vec<Vec<Acc>> = Vec::new();
                let mut key = vec![0i64; group_cols.len()];
                while let Some(block) = op.next_block() {
                    for r in 0..block.len {
                        for (k, &c) in group_cols.iter().enumerate() {
                            key[k] = block.columns[c][r];
                        }
                        let g = groups.get_or_insert(&key);
                        if g == accs.len() {
                            accs.push(vec![init_acc(); aggs.len()]);
                        }
                        for (a, spec) in aggs.iter().enumerate() {
                            fold(
                                &mut accs[g][a],
                                spec.func,
                                &self.domains[a],
                                block.columns[spec.col][r],
                            );
                        }
                    }
                }
                MorselOut::Groups(groups.keys().iter().cloned().zip(accs).collect())
            }
            MorselPipeline::OrderedAgg { group_cols, aggs } => {
                let mut runs: Vec<(Vec<i64>, Vec<Acc>)> = Vec::new();
                let mut key = Vec::with_capacity(group_cols.len());
                while let Some(block) = op.next_block() {
                    for r in 0..block.len {
                        key.clear();
                        for &c in group_cols {
                            key.push(block.columns[c][r]);
                        }
                        if runs.last().map(|(k, _)| k.as_slice()) != Some(&key[..]) {
                            runs.push((key.clone(), vec![init_acc(); aggs.len()]));
                        }
                        let accs = &mut runs.last_mut().expect("just pushed").1;
                        for (a, spec) in aggs.iter().enumerate() {
                            fold(
                                &mut accs[a],
                                spec.func,
                                &self.domains[a],
                                block.columns[spec.col][r],
                            );
                        }
                    }
                }
                MorselOut::Groups(runs)
            }
        }
    }

    /// The merge phase: deterministic, single-threaded, in morsel order.
    fn merge(&mut self, outs: Vec<MorselOut>) {
        match &self.pipeline {
            MorselPipeline::Emit => {
                self.output = outs
                    .into_iter()
                    .flat_map(|o| match o {
                        MorselOut::Blocks(bs) => bs,
                        MorselOut::Groups(_) => unreachable!("emit pipeline"),
                    })
                    .collect();
            }
            MorselPipeline::HashAgg { group_cols, aggs } => {
                let mut groups = GroupMap::new(self.strategy, self.packing.clone());
                let mut accs: Vec<Vec<Acc>> = Vec::new();
                for out in outs {
                    let MorselOut::Groups(pairs) = out else {
                        unreachable!("aggregate pipeline")
                    };
                    for (key, partial) in pairs {
                        let g = groups.get_or_insert(&key);
                        if g == accs.len() {
                            accs.push(vec![init_acc(); aggs.len()]);
                        }
                        for (a, spec) in aggs.iter().enumerate() {
                            merge_acc(&mut accs[g][a], &partial[a], spec.func, &self.domains[a]);
                        }
                    }
                }
                // A global aggregate over empty input still produces one
                // row of empty aggregates, SQL-style (as serial does).
                if group_cols.is_empty() && groups.is_empty() {
                    groups.get_or_insert(&[]);
                    accs.push(vec![init_acc(); aggs.len()]);
                }
                self.output = self.finish_groups(groups.keys(), &accs, group_cols, aggs);
            }
            MorselPipeline::OrderedAgg { group_cols, aggs } => {
                let mut runs: Vec<(Vec<i64>, Vec<Acc>)> = Vec::new();
                for out in outs {
                    let MorselOut::Groups(pairs) = out else {
                        unreachable!("aggregate pipeline")
                    };
                    for (key, partial) in pairs {
                        match runs.last_mut() {
                            // A group straddling the morsel boundary:
                            // fold the continuation into the open run.
                            Some((k, accs)) if *k == key => {
                                for (a, spec) in aggs.iter().enumerate() {
                                    merge_acc(
                                        &mut accs[a],
                                        &partial[a],
                                        spec.func,
                                        &self.domains[a],
                                    );
                                }
                            }
                            _ => runs.push((key, partial)),
                        }
                    }
                }
                let keys: Vec<Vec<i64>> = runs.iter().map(|(k, _)| k.clone()).collect();
                let accs: Vec<Vec<Acc>> = runs.into_iter().map(|(_, a)| a).collect();
                self.output = self.finish_groups(&keys, &accs, group_cols, aggs);
            }
        }
    }

    /// Finalize accumulators into column-major output blocks — the same
    /// assembly the serial aggregates perform.
    fn finish_groups(
        &self,
        keys: &[Vec<i64>],
        accs: &[Vec<Acc>],
        group_cols: &[usize],
        aggs: &[AggSpec],
    ) -> Vec<Block> {
        let ncols = group_cols.len() + aggs.len();
        let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(keys.len()); ncols];
        for (gk, acc) in keys.iter().zip(accs) {
            for (k, &v) in gk.iter().enumerate() {
                cols[k].push(v);
            }
            for (a, spec) in aggs.iter().enumerate() {
                cols[group_cols.len() + a].push(final_value(&acc[a], spec.func, &self.domains[a]));
            }
        }
        emit_blocks(cols, ncols)
    }

    fn run(&mut self) {
        self.ran = true;
        let morsels = self.morsels.clone();
        if self.degree > 1 && tde_obs::metrics::enabled() {
            tde_obs::metrics::morsel_metrics().parallel_queries.inc();
        }
        let outs = run_morsels(self.degree, morsels.len(), |m| {
            self.run_morsel(morsels[m as usize])
        });
        self.merge(outs);
    }
}

impl Operator for MorselExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if !self.ran {
            self.run();
        }
        let b = self.output.get(self.next).cloned();
        self.next += 1;
        b
    }
}

impl MorselExec {
    /// The source schema the pipeline scans (the planner needs it to
    /// resolve predicate/aggregate column indices).
    pub fn source_schema(&self) -> &Schema {
        &self.source_schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{HashAggregate, OrderedAggregate};
    use crate::expr::CmpOp;
    use crate::{drain, BoxOp};
    use std::collections::BTreeSet;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::DataType;

    // ---- RangeDeque protocol ----

    /// Exhaustive interleaving model of the claim protocol: from every
    /// reachable (head, tail) state, apply every operation; each id must
    /// be claimed exactly once across any operation sequence. Because
    /// each operation is one CAS on one word, operation-level
    /// interleaving is exactly thread-level interleaving.
    #[test]
    fn deque_claim_protocol_is_exact_under_all_interleavings() {
        fn walk(head: u32, tail: u32, hi: u32, claimed: &mut BTreeSet<u32>) {
            // Invariant: claimed = [0, head) ∪ [tail, hi).
            let expect: BTreeSet<u32> = (0..head).chain(tail..hi).collect();
            assert_eq!(*claimed, expect, "state ({head},{tail})");
            if head >= tail {
                return;
            }
            // pop_front claims `head`.
            assert!(claimed.insert(head), "double-claim {head}");
            walk(head + 1, tail, hi, claimed);
            claimed.remove(&head);
            // steal_back claims `tail - 1`.
            assert!(claimed.insert(tail - 1), "double-claim {}", tail - 1);
            walk(head, tail - 1, hi, claimed);
            claimed.remove(&(tail - 1));
            // drain claims [head, tail).
            for id in head..tail {
                assert!(claimed.insert(id), "double-claim {id}");
            }
            walk(tail, tail, hi, claimed);
            for id in head..tail {
                claimed.remove(&id);
            }
        }
        for n in 0..=6u32 {
            let mut claimed = BTreeSet::new();
            walk(0, n, n, &mut claimed);
        }
    }

    #[test]
    fn deque_concurrent_claims_are_exactly_once() {
        const N: u32 = 10_000;
        let d = RangeDeque::new(0, N);
        let claims: Vec<Mutex<Vec<u32>>> = (0..8).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for (t, slot) in claims.iter().enumerate() {
                let d = &d;
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        // Half the threads pop, half steal.
                        let got = if t % 2 == 0 {
                            d.pop_front()
                        } else {
                            d.steal_back()
                        };
                        match got {
                            Some(id) => mine.push(id),
                            None => break,
                        }
                    }
                    *slot.lock().unwrap() = mine;
                });
            }
        });
        let mut all: Vec<u32> = claims
            .iter()
            .flat_map(|m| m.lock().unwrap().clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
        assert_eq!(d.remaining(), 0);
    }

    /// Loom model of the push/steal/drain protocol: an owner pops and
    /// pushes, a thief steals, a killer drains; every id must be claimed
    /// exactly once. Under the offline loom shim this is bounded
    /// stress; against real loom the same body explores interleavings
    /// exhaustively (the deque is one word, so each op is one atomic
    /// transition — exactly the granularity loom schedules at).
    #[test]
    fn deque_push_steal_drain_protocol_loom_model() {
        loom::model(|| {
            let d = loom::sync::Arc::new(RangeDeque::new(0, 3));
            let claims = loom::sync::Arc::new(Mutex::new(Vec::new()));
            let owner = {
                let (d, claims) = (d.clone(), claims.clone());
                loom::thread::spawn(move || {
                    let mut got = Vec::new();
                    got.extend(d.pop_front());
                    d.push_back(2); // ids 3, 4 join the pending range
                    got.extend(d.pop_front());
                    claims.lock().unwrap().extend(got);
                })
            };
            let thief = {
                let (d, claims) = (d.clone(), claims.clone());
                loom::thread::spawn(move || {
                    let mut got = Vec::new();
                    got.extend(d.steal_back());
                    got.extend(d.steal_back());
                    claims.lock().unwrap().extend(got);
                })
            };
            let killer = {
                let (d, claims) = (d.clone(), claims.clone());
                loom::thread::spawn(move || {
                    let (lo, hi) = d.drain();
                    claims.lock().unwrap().extend(lo..hi);
                })
            };
            owner.join().unwrap();
            thief.join().unwrap();
            killer.join().unwrap();
            // The killer may have drained before the owner's push_back,
            // so a late pop/steal can still claim the pushed ids — but
            // nothing is ever claimed twice or invented.
            let (_, _) = d.drain();
            let mut got = claims.lock().unwrap().clone();
            got.sort_unstable();
            let mut dedup = got.clone();
            dedup.dedup();
            assert_eq!(got, dedup, "double-claimed ids: {got:?}");
            assert!(got.iter().all(|&id| id < 5), "invented id: {got:?}");
        });
    }

    #[test]
    fn deque_push_back_extends_tail() {
        let d = RangeDeque::new(3, 3);
        assert_eq!(d.pop_front(), None);
        d.push_back(2);
        assert_eq!(d.remaining(), 2);
        assert_eq!(d.steal_back(), Some(4));
        assert_eq!(d.pop_front(), Some(3));
        assert_eq!(d.drain(), (4, 4));
    }

    // ---- scheduler ----

    #[test]
    fn scheduler_returns_results_in_morsel_order() {
        for degree in [1usize, 2, 3, 8] {
            let out = run_morsels(degree, 37, |m| m * 10);
            assert_eq!(out, (0..37).map(|m| m * 10).collect::<Vec<_>>(), "{degree}");
        }
    }

    #[test]
    fn scheduler_propagates_worker_panics() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            run_morsels(4, 64, |m| {
                if m == 13 {
                    panic!("boom at morsel {m}");
                }
                m
            })
        }));
        let msg = *r.expect_err("must panic").downcast::<String>().unwrap();
        assert!(msg.contains("boom at morsel 13"), "{msg}");
    }

    // ---- pipeline serial equivalence ----

    fn table(rows: i64) -> Arc<Table> {
        let mut g = ColumnBuilder::new("g", DataType::Integer, EncodingPolicy::default());
        let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for i in 0..rows {
            g.append_i64(i / 300); // sorted, RLE-friendly
            v.append_i64(i % 977);
            s.append_str(Some(["x", "y", "z"][i as usize % 3]));
        }
        Arc::new(Table::new(
            "t",
            vec![g.finish().column, v.finish().column, s.finish().column],
        ))
    }

    fn assert_blocks_identical(serial: Vec<Block>, parallel: Vec<Block>, what: &str) {
        assert_eq!(serial.len(), parallel.len(), "{what}: block count");
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            assert_eq!(a.len, b.len, "{what}: block {i} len");
            assert_eq!(a.columns, b.columns, "{what}: block {i} columns");
        }
    }

    fn pred() -> Expr {
        Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(3))
    }

    #[test]
    fn emit_pipeline_is_byte_identical_to_serial_scan() {
        let t = table(9000);
        for predicate in [None, Some((pred(), false)), Some((pred(), true))] {
            let mut serial = TableScan::new(Arc::clone(&t));
            if let Some((p, ff)) = &predicate {
                serial = serial.with_pushed_quiet(p.clone(), *ff);
            }
            let want = drain(Box::new(serial));
            for degree in [1usize, 2, 4, 8] {
                let m = MorselExec::new(
                    MorselSource::Table {
                        handles: ColumnHandle::all(&t),
                        expand: false,
                    },
                    predicate.clone(),
                    MorselPipeline::Emit,
                    degree,
                );
                assert_blocks_identical(
                    want.clone(),
                    drain(Box::new(m)),
                    &format!("emit degree={degree} pred={}", predicate.is_some()),
                );
            }
        }
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Count, 1, "n"),
            AggSpec::new(AggFunc::Sum, 1, "s"),
            AggSpec::new(AggFunc::Min, 1, "lo"),
            AggSpec::new(AggFunc::Max, 2, "hi"),
        ]
    }

    #[test]
    fn hash_agg_pipeline_is_byte_identical_to_serial() {
        let t = table(20_000);
        // Group by a token column too: exercises non-trivial domains.
        for group_cols in [vec![0usize], vec![2, 0]] {
            let serial: BoxOp = Box::new(HashAggregate::new(
                Box::new(TableScan::new(Arc::clone(&t)).with_pushed_quiet(pred(), false)),
                group_cols.clone(),
                specs(),
            ));
            let want = drain(serial);
            for degree in [2usize, 4, 8] {
                let m = MorselExec::new(
                    MorselSource::Table {
                        handles: ColumnHandle::all(&t),
                        expand: false,
                    },
                    Some((pred(), false)),
                    MorselPipeline::HashAgg {
                        group_cols: group_cols.clone(),
                        aggs: specs(),
                    },
                    degree,
                );
                assert_eq!(m.schema().fields.len(), group_cols.len() + specs().len());
                assert_blocks_identical(
                    want.clone(),
                    drain(Box::new(m)),
                    &format!("hash degree={degree} groups={group_cols:?}"),
                );
            }
        }
    }

    #[test]
    fn ordered_agg_pipeline_is_byte_identical_to_serial() {
        // Groups of 300 rows straddle both block and morsel boundaries,
        // so the boundary merge is exercised heavily.
        let t = table(20_000);
        let serial: BoxOp = Box::new(OrderedAggregate::new(
            Box::new(TableScan::new(Arc::clone(&t))),
            vec![0],
            specs(),
        ));
        let want = drain(serial);
        for degree in [2usize, 4, 8] {
            let m = MorselExec::new(
                MorselSource::Table {
                    handles: ColumnHandle::all(&t),
                    expand: false,
                },
                None,
                MorselPipeline::OrderedAgg {
                    group_cols: vec![0],
                    aggs: specs(),
                },
                degree,
            );
            assert_blocks_identical(
                want.clone(),
                drain(Box::new(m)),
                &format!("ordered degree={degree}"),
            );
        }
    }

    #[test]
    fn global_aggregate_over_empty_input_emits_one_row() {
        let t = table(1000);
        // Predicate matching nothing → empty input to the aggregate.
        let none = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(-1));
        let m = MorselExec::new(
            MorselSource::Table {
                handles: ColumnHandle::all(&t),
                expand: false,
            },
            Some((none, false)),
            MorselPipeline::HashAgg {
                group_cols: vec![],
                aggs: vec![AggSpec::new(AggFunc::Count, 0, "n")],
            },
            4,
        );
        let blocks = drain(Box::new(m));
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len, 1);
        assert_eq!(blocks[0].columns[0][0], 0);
    }

    #[test]
    fn merged_source_pipelines_match_serial() {
        use crate::merged_scan::MergedScan;
        let t = table(7000);
        let handles = ColumnHandle::all(&t);
        let fields: Vec<_> = handles.iter().map(|h| h.field(false)).collect();
        // One delta block in the merged repr (integer cols + a token col
        // reusing an existing token).
        let tok = {
            let b = drain(Box::new(TableScan::new(Arc::clone(&t))));
            b[0].columns[2][0]
        };
        let delta = vec![Block::new(vec![vec![100, 200], vec![7, 8], vec![tok, tok]])];
        for tombstones in [vec![], vec![5u64, 2000, 6999]] {
            let src = Arc::new(MergedSource::new(
                "t",
                handles.clone(),
                fields.clone(),
                7000,
                Arc::new(tombstones.clone()),
                delta.clone(),
            ));
            // Emit with predicate.
            let want = drain(Box::new(
                MergedScan::all(Arc::clone(&src), false).with_pushed(pred(), false),
            ));
            for degree in [2usize, 4] {
                let m = MorselExec::new(
                    MorselSource::Merged {
                        source: Arc::clone(&src),
                        columns: (0..3).collect(),
                        expand: false,
                    },
                    Some((pred(), false)),
                    MorselPipeline::Emit,
                    degree,
                );
                assert_blocks_identical(
                    want.clone(),
                    drain(Box::new(m)),
                    &format!("merged emit degree={degree} tombstones={tombstones:?}"),
                );
            }
            // Hash aggregate over the merged scan.
            let want = drain(Box::new(HashAggregate::new(
                Box::new(MergedScan::all(Arc::clone(&src), false)),
                vec![0],
                specs(),
            )));
            let m = MorselExec::new(
                MorselSource::Merged {
                    source: Arc::clone(&src),
                    columns: (0..3).collect(),
                    expand: false,
                },
                None,
                MorselPipeline::HashAgg {
                    group_cols: vec![0],
                    aggs: specs(),
                },
                4,
            );
            assert_blocks_identical(
                want,
                drain(Box::new(m)),
                &format!("merged hash tombstones={tombstones:?}"),
            );
        }
    }

    #[test]
    fn empty_table_pipelines() {
        let t = Arc::new(Table::new("e", vec![]));
        let m = MorselExec::new(
            MorselSource::Table {
                handles: ColumnHandle::all(&t),
                expand: false,
            },
            None,
            MorselPipeline::Emit,
            4,
        );
        assert!(drain(Box::new(m)).is_empty());
    }
}

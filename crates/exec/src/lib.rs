//! Block-iterated Volcano-style execution engine (paper §2.3.1).
//!
//! Two operator styles exist: *flow* operators process one block of rows
//! at a time ([`scan::TableScan`], [`filter::Filter`],
//! [`project::Project`], [`exchange::Exchange`]); *stop-and-go* operators
//! must consume their whole input before producing output
//! ([`flow_table::FlowTable`], [`sort::Sort`], the aggregates and the join
//! inner sides).
//!
//! The paper's contributions live in:
//!
//! * [`dictionary_table`] — the DictionaryTable operator behind invisible
//!   joins (§4.1.1);
//! * [`index_table`] / [`indexed_scan`] — the IndexTable pseudo-table over
//!   a run-length column and the IndexedScan rank join that turns range
//!   matches into block skips (§4.2);
//! * [`flow_table`] — FlowTable with per-column parallel dynamic encoding
//!   and the §3.4 post-processing (narrowing, heap sorting, metadata
//!   extraction);
//! * [`tactical`] — the run-time optimizer choices: hash strategy by key
//!   width (§2.3.4), fetch joins from dense/unique metadata (§2.3.5),
//!   ordered vs hash aggregation (§4.2.2);
//! * [`exchange`] — parallel block routing with the order-preserving mode
//!   the strategic optimizer forces upstream of encoders (§4.3).

pub mod aggregate;
pub mod block;
pub mod cursor;
pub mod dictionary_table;
pub mod exchange;
pub mod expr;
pub mod filter;
pub mod flow_table;
pub mod handle;
pub mod hash;
pub mod index_table;
pub mod indexed_scan;
pub mod join;
pub mod merged_scan;
pub mod morsel;
pub mod obs;
pub mod parallel;
pub mod project;
pub mod pushdown;
pub mod rle_agg;
pub mod scan;
pub mod sort;
pub mod tactical;
pub mod topn;

pub use block::{Block, Field, Repr, Schema};
pub use expr::{AggFunc, CmpOp, Expr};

/// Rows per execution block — matches the encoding decompression block
/// size so one decode call serves one block (paper §3.1).
pub const BLOCK_ROWS: usize = tde_encodings::BLOCK_SIZE;

/// A boxed operator in a pipeline.
pub type BoxOp = Box<dyn Operator + Send>;

/// The Volcano block iterator interface.
pub trait Operator {
    /// The output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next block, or `None` at end of stream.
    fn next_block(&mut self) -> Option<Block>;
}

/// Drain an operator into a vector of blocks (tests, stop-and-go inputs).
pub fn drain(mut op: BoxOp) -> Vec<Block> {
    let mut out = Vec::new();
    while let Some(b) = op.next_block() {
        out.push(b);
    }
    out
}

/// Count the rows an operator produces.
pub fn count_rows(mut op: BoxOp) -> u64 {
    let mut n = 0;
    while let Some(b) = op.next_block() {
        n += b.len as u64;
    }
    n
}

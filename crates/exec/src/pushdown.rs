//! Compiling pushed-down predicates into compressed-domain value sets.
//!
//! The strategic optimizer moves an eligible single-column Filter
//! predicate into the scan (§4.1.1 generalized to all encodings); the
//! scan then compiles it here into a [`ValueSet`] whose membership test
//! on a *raw stored value* is exactly the predicate's truth value under
//! block-wise evaluation — including the three-valued-logic corners:
//! comparisons never match the NULL sentinel, `NOT` of a comparison
//! *does* match it, and comparisons against a NULL literal match
//! nothing.
//!
//! Compilation is shape-only and conservative: `None` means "no exact
//! integer-domain reading exists" (real arithmetic, string literals,
//! functions, multi-column comparisons) and the scan keeps the
//! decode-then-eval path.

use crate::expr::{CmpOp, Expr};
use tde_encodings::kernel::ValueSet;
use tde_types::Value;

/// Compile a predicate over one column into the exact set of raw stored
/// values it accepts, or `None` when the predicate has no integer-domain
/// value-set reading.
pub fn compile_value_set(expr: &Expr) -> Option<ValueSet> {
    match expr {
        Expr::Cmp(op, a, b) => {
            let (op, lit) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(_), Expr::Lit(v)) => (*op, v),
                (Expr::Lit(v), Expr::Col(_)) => (op.flip(), v),
                _ => return None,
            };
            let raw = match lit {
                // A NULL literal compares false against everything.
                Value::Null => return Some(ValueSet::empty()),
                Value::Int(i) => *i,
                Value::Bool(b) => *b as i64,
                Value::Date(d) => *d,
                Value::Timestamp(t) => *t,
                // Real comparisons promote to f64; string literals
                // compare through the heap. Neither is an i64 set.
                Value::Real(_) | Value::Str(_) => return None,
            };
            Some(match op {
                CmpOp::Eq => ValueSet::eq(raw),
                CmpOp::Ne => ValueSet::ne(raw),
                CmpOp::Lt => ValueSet::lt(raw),
                CmpOp::Le => ValueSet::le(raw),
                CmpOp::Gt => ValueSet::gt(raw),
                CmpOp::Ge => ValueSet::ge(raw),
            })
        }
        Expr::And(a, b) => Some(compile_value_set(a)?.intersect(&compile_value_set(b)?)),
        Expr::Or(a, b) => Some(compile_value_set(a)?.union(&compile_value_set(b)?)),
        Expr::Not(a) => Some(compile_value_set(a)?.complement()),
        Expr::IsNull(a) => match a.as_ref() {
            Expr::Col(_) => Some(ValueSet::is_null()),
            _ => None,
        },
        // A bare column is truthy when its raw value is nonzero (the
        // NULL sentinel is nonzero, so NULL rows are kept).
        Expr::Col(_) => Some(ValueSet::truthy()),
        Expr::Lit(v) => {
            let raw = match v {
                Value::Null => return Some(ValueSet::full()),
                Value::Real(r) => r.to_bits() as i64,
                Value::Str(_) => return None,
                other => other.as_i64()?,
            };
            Some(if raw != 0 {
                ValueSet::full()
            } else {
                ValueSet::empty()
            })
        }
        Expr::Arith(..) | Expr::Func(..) => None,
    }
}

/// Whether the predicate's *shape* admits a value-set compilation — the
/// strategic optimizer's eligibility test. (Whether the target column's
/// encoding then has a kernel is the scan's tactical decision.)
pub fn compilable(expr: &Expr) -> bool {
    compile_value_set(expr).is_some()
}

/// Compact `v` in place to the rows in the given sorted, disjoint,
/// half-open local ranges.
pub fn gather_ranges(v: &mut Vec<i64>, ranges: &[(usize, usize)]) {
    let mut write = 0usize;
    for &(lo, hi) in ranges {
        v.copy_within(lo..hi, write);
        write += hi - lo;
    }
    v.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_types::sentinel::NULL_I64;

    #[test]
    fn compiles_cmp_shapes_and_flips_literal_side() {
        let set = compile_value_set(&Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(10))).unwrap();
        assert!(set.contains(9) && !set.contains(10) && !set.contains(NULL_I64));
        // 10 < col  ==  col > 10
        let set = compile_value_set(&Expr::cmp(CmpOp::Lt, Expr::int(10), Expr::col(0))).unwrap();
        assert!(set.contains(11) && !set.contains(10));
    }

    #[test]
    fn logic_and_null_shapes() {
        let between = Expr::And(
            Box::new(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(5))),
            Box::new(Expr::cmp(CmpOp::Le, Expr::col(0), Expr::int(8))),
        );
        assert_eq!(compile_value_set(&between).unwrap().intervals(), &[(5, 8)]);
        let not_eq = Expr::Not(Box::new(Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(5))));
        assert!(compile_value_set(&not_eq).unwrap().contains(NULL_I64));
        let is_null = Expr::IsNull(Box::new(Expr::col(0)));
        assert_eq!(
            compile_value_set(&is_null).unwrap().intervals(),
            &[(NULL_I64, NULL_I64)]
        );
        // NULL literal comparisons are empty, not errors.
        let vs_null = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::Lit(Value::Null));
        assert!(compile_value_set(&vs_null).unwrap().is_empty());
    }

    #[test]
    fn uncompilable_shapes_decline() {
        use crate::expr::ArithOp;
        assert!(!compilable(&Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::col(1)
        )));
        assert!(!compilable(&Expr::cmp(
            CmpOp::Gt,
            Expr::col(0),
            Expr::Lit(Value::Real(1.5))
        )));
        assert!(!compilable(&Expr::cmp(
            CmpOp::Eq,
            Expr::col(0),
            Expr::Lit(Value::Str("x".into()))
        )));
        let arith = Expr::Arith(ArithOp::Add, Box::new(Expr::col(0)), Box::new(Expr::int(1)));
        assert!(!compilable(&Expr::cmp(CmpOp::Gt, arith, Expr::int(5))));
    }

    #[test]
    fn gather_compacts_ranges_in_place() {
        let mut v = vec![10, 11, 12, 13, 14, 15, 16, 17];
        gather_ranges(&mut v, &[(1, 3), (6, 8)]);
        assert_eq!(v, vec![11, 12, 16, 17]);
        let mut v = vec![1, 2, 3];
        gather_ranges(&mut v, &[]);
        assert!(v.is_empty());
    }
}

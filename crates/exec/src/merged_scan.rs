//! Merge-on-read scan over a base table plus a write-optimized delta.
//!
//! The C-Store write path (and the paper's TDE production successor)
//! keeps extracts read-optimized by routing mutations into a small
//! uncompressed delta that queries *merge on read*: a scan unions the
//! compressed base rows (minus tombstoned ones) with the delta rows, so
//! every operator above the scan sees one consistent table.
//!
//! [`MergedSource`] is the immutable snapshot an upstream delta store
//! (crate `tde-delta`) prepares: full-width base column handles, merged
//! output fields whose reprs extend the base dictionaries/heaps with the
//! delta's values (base tokens and codes stay valid — both structures
//! are append-only), a sorted tombstone list, and the delta rows already
//! tokenized into the merged representation. [`MergedScan`] then streams
//! base blocks followed by delta blocks.
//!
//! Predicate handling is two-sided: when the base carries no tombstones
//! the base half *delegates* to [`TableScan::with_pushed`], keeping every
//! compressed-domain kernel; with tombstones live, base blocks are
//! position-masked first and the predicate falls back to per-block
//! decode-then-eval (block skipping would desynchronize the global row
//! offsets the mask needs). Delta blocks always evaluate per block —
//! they are tiny and uncompressed by construction.

use crate::block::{Block, Field, Repr, Schema};
use crate::expr::{eval, ComputeHeap, Expr};
use crate::handle::ColumnHandle;
use crate::scan::TableScan;
use crate::Operator;
use std::sync::Arc;

/// An immutable merge snapshot: everything a [`MergedScan`] needs to
/// present base ∪ delta − tombstones as one table.
///
/// Invariants (enforced by the constructor):
/// * `handles`, `fields` and every delta block have the same width;
/// * `tombstones` is strictly increasing and every id is `< base_rows`
///   (delta-row deletions are resolved by the snapshot builder, not
///   carried here);
/// * delta blocks are in the *merged* representation — their token /
///   dictionary-code values are valid under `fields[i].repr`.
#[derive(Debug)]
pub struct MergedSource {
    name: String,
    handles: Vec<ColumnHandle>,
    fields: Vec<Field>,
    base_rows: u64,
    tombstones: Arc<Vec<u64>>,
    delta: Vec<Block>,
    delta_rows: u64,
}

impl MergedSource {
    /// Build a snapshot. Panics on violated invariants — snapshot
    /// construction is engine code, not untrusted input.
    pub fn new(
        name: impl Into<String>,
        handles: Vec<ColumnHandle>,
        fields: Vec<Field>,
        base_rows: u64,
        tombstones: Arc<Vec<u64>>,
        delta: Vec<Block>,
    ) -> MergedSource {
        assert_eq!(handles.len(), fields.len(), "handle/field width mismatch");
        assert!(
            tombstones.windows(2).all(|w| w[0] < w[1]),
            "tombstones must be strictly increasing"
        );
        assert!(
            tombstones.last().is_none_or(|&t| t < base_rows),
            "tombstone beyond base rows"
        );
        let mut delta_rows = 0u64;
        for b in &delta {
            assert_eq!(b.columns.len(), fields.len(), "delta block width mismatch");
            delta_rows += b.len as u64;
        }
        MergedSource {
            name: name.into(),
            handles,
            fields,
            base_rows,
            tombstones,
            delta,
            delta_rows,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Merged output fields, full width.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Column names in schema order.
    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Base-table row count (before tombstone masking).
    pub fn base_rows(&self) -> u64 {
        self.base_rows
    }

    /// Live delta row count.
    pub fn delta_rows(&self) -> u64 {
        self.delta_rows
    }

    /// Number of tombstoned base rows.
    pub fn tombstone_count(&self) -> u64 {
        self.tombstones.len() as u64
    }

    /// Logical row count after the merge.
    pub fn merged_rows(&self) -> u64 {
        self.base_rows - self.tombstones.len() as u64 + self.delta_rows
    }
}

enum BaseSide {
    /// No tombstones: a plain [`TableScan`] (possibly kernel-pushed)
    /// whose blocks flow through untouched.
    Delegated(TableScan),
    /// Tombstones live: an unpushed scan whose blocks are masked by
    /// global row position, then predicate-filtered per block.
    Masked { scan: TableScan, offset: u64 },
}

/// The merge-on-read scan operator. See the module docs for semantics.
pub struct MergedScan {
    source: Arc<MergedSource>,
    columns: Vec<usize>,
    schema: Schema,
    /// Unexpanded merged reprs of the projected columns (the schema may
    /// have been rewritten to Scalar by `expand`).
    reprs: Vec<Repr>,
    expand: bool,
    predicate: Option<Expr>,
    force_fallback: bool,
    heap: Option<ComputeHeap>,
    base: Option<BaseSide>,
    started: bool,
    delta_idx: usize,
    done: bool,
    mode: &'static str,
    /// Base decompression-block range `[lo, hi)` this scan covers
    /// (`None` = the whole base).
    range: Option<(usize, usize)>,
    /// Whether the delta leg is emitted after the base range.
    include_delta: bool,
    /// Suppress per-scan decision/kernel telemetry (morsel copies).
    quiet: bool,
}

impl MergedScan {
    /// Scan the projection `columns` (indices into the source schema).
    pub fn new(source: Arc<MergedSource>, columns: Vec<usize>, expand: bool) -> MergedScan {
        let reprs: Vec<Repr> = columns
            .iter()
            .map(|&i| source.fields()[i].repr.clone())
            .collect();
        let fields = columns
            .iter()
            .map(|&i| {
                let mut f = source.fields()[i].clone();
                if expand && matches!(f.repr, Repr::DictIndex(_)) {
                    f.repr = Repr::Scalar;
                }
                f
            })
            .collect();
        MergedScan {
            source,
            columns,
            schema: Schema::new(fields),
            reprs,
            expand,
            predicate: None,
            force_fallback: false,
            heap: None,
            base: None,
            started: false,
            delta_idx: 0,
            done: false,
            mode: "",
            range: None,
            include_delta: true,
            quiet: false,
        }
    }

    /// Scan every column.
    pub fn all(source: Arc<MergedSource>, expand: bool) -> MergedScan {
        let cols = (0..source.fields().len()).collect();
        MergedScan::new(source, cols, expand)
    }

    /// Apply `predicate` (over the scan's output schema) inside the scan.
    /// `force_fallback` pins the per-block decode-then-eval path on both
    /// sides — the differential oracle's control arm.
    pub fn with_pushed(mut self, predicate: Expr, force_fallback: bool) -> MergedScan {
        self.predicate = Some(predicate);
        self.force_fallback = force_fallback;
        self
    }

    /// Restrict the scan to base decompression blocks `[start, end)`,
    /// emitting the delta leg after the base range only when
    /// `include_delta` is set. Morsel workers use this to split one
    /// merge-on-read scan into disjoint ranged scans (the delta rides
    /// with exactly one morsel); the per-morsel copies are quiet — the
    /// query-level decision and kernel telemetry is emitted once by the
    /// morsel operator, not multiplied by the morsel count.
    pub fn with_morsel_range(
        mut self,
        start: usize,
        end: usize,
        include_delta: bool,
    ) -> MergedScan {
        debug_assert!(!self.started, "ranged after reads began");
        self.range = Some((start, end));
        self.include_delta = include_delta;
        self.quiet = true;
        self
    }

    /// How the base side answers the scan — `"base-kernel-delegate"` or
    /// `"tombstone-mask-eval"`. Labels the physical plan node.
    pub fn merge_mode(&self) -> &'static str {
        if self.source.tombstones.is_empty() {
            "base-kernel-delegate"
        } else {
            "tombstone-mask-eval"
        }
    }

    fn start(&mut self) {
        self.started = true;
        let handles: Vec<ColumnHandle> = self
            .columns
            .iter()
            .map(|&i| self.source.handles[i].clone())
            .collect();
        let masked = !self.source.tombstones.is_empty();
        self.mode = self.merge_mode();
        let rows = self.source.base_rows;
        let tombstones = self.source.tombstone_count();
        if !self.quiet {
            tde_obs::emit(|| tde_obs::Event::Decision {
                point: "merged-scan",
                choice: self.mode.to_string(),
                reason: format!(
                    "table '{}': {rows} base row(s), {tombstones} tombstone(s), {} delta row(s)",
                    self.source.name, self.source.delta_rows
                ),
            });
        }
        if masked {
            // Block skipping under a kernel would desync the row offsets
            // the tombstone mask is keyed by: scan plain, mask, then eval.
            let mut scan = TableScan::from_handles(handles, self.expand);
            let mut offset = 0u64;
            if let Some((lo, hi)) = self.range {
                scan = scan.with_block_range(lo, hi);
                offset = lo as u64 * crate::BLOCK_ROWS as u64;
            }
            if self.predicate.is_some() {
                self.heap = Some(ComputeHeap::new());
            }
            self.base = Some(BaseSide::Masked { scan, offset });
        } else {
            let mut scan = TableScan::from_handles(handles, self.expand);
            if let Some(p) = &self.predicate {
                scan = if self.quiet {
                    scan.with_pushed_quiet(p.clone(), self.force_fallback)
                } else {
                    scan.with_pushed(p.clone(), self.force_fallback)
                };
            }
            if let Some((lo, hi)) = self.range {
                scan = scan.with_block_range(lo, hi);
            }
            // Delta blocks still need their own evaluator.
            if self.predicate.is_some() {
                self.heap = Some(ComputeHeap::new());
            }
            self.base = Some(BaseSide::Delegated(scan));
        }
    }

    /// Evaluate the pushed predicate over `block`, in place.
    fn eval_predicate(&mut self, block: &mut Block) {
        if let Some(p) = &self.predicate {
            let mut heap = self.heap.as_mut();
            let mask = eval(p, &self.schema, block, &mut heap);
            let keep: Vec<bool> = mask.data.iter().map(|&b| b != 0).collect();
            block.filter(&keep);
        }
    }

    /// Mask tombstoned rows out of a base block covering global rows
    /// `[offset, offset + block.len)`.
    fn mask_tombstones(&self, block: &mut Block, offset: u64) {
        let ts = &self.source.tombstones;
        let lo = ts.partition_point(|&t| t < offset);
        let hi = ts.partition_point(|&t| t < offset + block.len as u64);
        if lo == hi {
            return;
        }
        let mut keep = vec![true; block.len];
        for &t in &ts[lo..hi] {
            keep[(t - offset) as usize] = false;
        }
        block.filter(&keep);
    }

    /// Project, expand and filter the next delta block; `None` when the
    /// delta is exhausted.
    fn next_delta_block(&mut self) -> Option<Block> {
        if !self.include_delta {
            return None;
        }
        while self.delta_idx < self.source.delta.len() {
            let src = &self.source.delta[self.delta_idx];
            self.delta_idx += 1;
            if src.len == 0 || self.columns.is_empty() {
                continue;
            }
            let columns: Vec<Vec<i64>> = self
                .columns
                .iter()
                .zip(&self.reprs)
                .map(|(&i, repr)| {
                    let mut out = src.columns[i].clone();
                    if self.expand {
                        if let Repr::DictIndex(dict) = repr {
                            for v in &mut out {
                                *v = dict[*v as usize];
                            }
                        }
                    }
                    out
                })
                .collect();
            let mut block = Block {
                len: src.len,
                columns,
            };
            self.eval_predicate(&mut block);
            if block.len > 0 {
                return Some(block);
            }
        }
        None
    }
}

impl Operator for MergedScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.done {
            return None;
        }
        if !self.started {
            self.start();
        }
        loop {
            match self.base.as_mut() {
                Some(BaseSide::Delegated(scan)) => match scan.next_block() {
                    Some(b) => return Some(b),
                    None => self.base = None,
                },
                Some(BaseSide::Masked { scan, offset }) => match scan.next_block() {
                    Some(mut b) => {
                        let off = *offset;
                        *offset += b.len as u64;
                        self.mask_tombstones(&mut b, off);
                        self.eval_predicate(&mut b);
                        if b.len > 0 {
                            return Some(b);
                        }
                    }
                    None => self.base = None,
                },
                None => {
                    if let Some(b) = self.next_delta_block() {
                        return Some(b);
                    }
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::{count_rows, drain, BLOCK_ROWS};
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::{DataType, Value};

    fn tok(heap: &tde_storage::StringHeap, s: &str) -> i64 {
        heap.iter()
            .find(|&(_, v)| v == s)
            .map(|(t, _)| t as i64)
            .unwrap()
    }

    fn base_table(rows: i64) -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for i in 0..rows {
            a.append_i64(i);
            s.append_str(Some(["x", "y"][i as usize % 2]));
        }
        Arc::new(Table::new("t", vec![a.finish().column, s.finish().column]))
    }

    fn source_over(t: &Arc<Table>, tombstones: Vec<u64>, delta: Vec<Block>) -> Arc<MergedSource> {
        let handles = ColumnHandle::all(t);
        let fields = handles.iter().map(|h| h.field(false)).collect();
        Arc::new(MergedSource::new(
            "t",
            handles,
            fields,
            t.row_count(),
            Arc::new(tombstones),
            delta,
        ))
    }

    #[test]
    fn empty_delta_matches_plain_scan() {
        let t = base_table(3000);
        let src = source_over(&t, vec![], vec![]);
        let merged = count_rows(Box::new(MergedScan::all(src, false)));
        let plain = count_rows(Box::new(TableScan::new(t)));
        assert_eq!(merged, plain);
    }

    #[test]
    fn tombstones_mask_and_delta_appends() {
        let t = base_table(2600); // straddles a block boundary
        let handles = ColumnHandle::all(&t);
        let fields: Vec<Field> = handles.iter().map(|h| h.field(false)).collect();
        // A delta row in the merged repr: `a` scalar, `s` heap token.
        let heap = match &fields[1].repr {
            Repr::Token(h) => Arc::clone(h),
            _ => panic!("expected token repr"),
        };
        let tok_x = tok(&heap, "x");
        let delta = vec![Block::new(vec![vec![9000, 9001], vec![tok_x, tok_x]])];
        let src = Arc::new(MergedSource::new(
            "t",
            handles,
            fields,
            t.row_count(),
            Arc::new(vec![0, 1, BLOCK_ROWS as u64, 2599]),
            delta,
        ));
        assert_eq!(src.merged_rows(), 2600 - 4 + 2);
        let scan = MergedScan::all(Arc::clone(&src), false);
        assert_eq!(scan.merge_mode(), "tombstone-mask-eval");
        let blocks = drain(Box::new(scan));
        let total: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(total as u64, src.merged_rows());
        // First surviving base row is row 2 (0 and 1 tombstoned).
        assert_eq!(blocks[0].columns[0][0], 2);
        // Last block carries the delta rows.
        let last = blocks.last().unwrap();
        assert_eq!(last.columns[0], vec![9000, 9001]);
    }

    #[test]
    fn predicate_agrees_between_delegate_and_fallback() {
        let t = base_table(2000);
        let heap = match &ColumnHandle::all(&t)[1].field(false).repr {
            Repr::Token(h) => Arc::clone(h),
            _ => unreachable!(),
        };
        let tok_y = tok(&heap, "y");
        let delta = vec![Block::new(vec![vec![50, 5000], vec![tok_y, tok_y]])];
        let pred = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(100));
        for tombstones in [vec![], vec![3u64, 70, 1999]] {
            let src = source_over(&t, tombstones.clone(), delta.clone());
            let kernel = MergedScan::all(Arc::clone(&src), false).with_pushed(pred.clone(), false);
            let fallback = MergedScan::all(Arc::clone(&src), false).with_pushed(pred.clone(), true);
            let k: Vec<Block> = drain(Box::new(kernel));
            let f: Vec<Block> = drain(Box::new(fallback));
            let krows: Vec<i64> = k.iter().flat_map(|b| b.columns[0].clone()).collect();
            let frows: Vec<i64> = f.iter().flat_map(|b| b.columns[0].clone()).collect();
            assert_eq!(krows, frows, "tombstones={tombstones:?}");
            // Base rows 0..100 minus tombstoned {3, 70}, plus delta row 50.
            let expect = if tombstones.is_empty() { 101 } else { 99 };
            assert_eq!(krows.len(), expect);
        }
    }

    #[test]
    fn morsel_ranges_partition_the_merged_scan() {
        // Both base modes (delegate and tombstone-mask), with a pushed
        // predicate and a delta leg: the concatenation of disjoint
        // morsel-ranged scans must emit the same blocks as the whole
        // scan — the merged-source half of the morsel byte-identity
        // guarantee.
        let t = base_table(5200);
        let heap = match &ColumnHandle::all(&t)[1].field(false).repr {
            Repr::Token(h) => Arc::clone(h),
            _ => unreachable!(),
        };
        let tok_y = tok(&heap, "y");
        let delta = vec![Block::new(vec![vec![40, 7000], vec![tok_y, tok_y]])];
        let pred = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(4000));
        let nblocks = 5200usize.div_ceil(BLOCK_ROWS);
        for tombstones in [vec![], vec![3u64, BLOCK_ROWS as u64 + 7, 5199]] {
            let src = source_over(&t, tombstones.clone(), delta.clone());
            let build = |range: Option<(usize, usize, bool)>| {
                let mut s =
                    MergedScan::all(Arc::clone(&src), false).with_pushed(pred.clone(), false);
                if let Some((lo, hi, d)) = range {
                    s = s.with_morsel_range(lo, hi, d);
                }
                s
            };
            let whole = drain(Box::new(build(None)));
            for split in [2usize, 3, nblocks] {
                let mut pieces = Vec::new();
                let mut at = 0usize;
                while at < nblocks {
                    let hi = (at + split).min(nblocks);
                    // The delta leg rides with the last base morsel.
                    pieces.extend(drain(Box::new(build(Some((at, hi, hi == nblocks))))));
                    at = hi;
                }
                assert_eq!(
                    pieces.len(),
                    whole.len(),
                    "tombstones={tombstones:?} split={split}"
                );
                for (i, (p, w)) in pieces.iter().zip(&whole).enumerate() {
                    assert_eq!(p.columns, w.columns, "split={split} block={i}");
                }
            }
        }
    }

    #[test]
    fn dictionary_expansion_covers_delta_codes() {
        // An array-compressed base column; the merged dict appends one
        // new value the delta uses.
        let codes: Vec<i64> = (0..500i64).map(|i| i % 3).collect();
        let r = tde_encodings::dynamic::encode_all(&codes, tde_types::Width::W8, false);
        let base_dict = vec![100i64, 200, 300];
        let col = tde_storage::Column {
            name: "d".into(),
            dtype: DataType::Integer,
            data: r.stream,
            compression: tde_storage::Compression::Array {
                dictionary: base_dict.clone(),
                sorted: true,
            },
            metadata: tde_encodings::ColumnMetadata::unknown(),
        };
        let t = Arc::new(Table::new("t", vec![col]));
        let handles = ColumnHandle::all(&t);
        let mut fields: Vec<Field> = handles.iter().map(|h| h.field(false)).collect();
        let mut merged_dict = base_dict.clone();
        merged_dict.push(999);
        fields[0].repr = Repr::DictIndex(Arc::new(merged_dict.clone()));
        let new_code = (merged_dict.len() - 1) as i64;
        let delta = vec![Block::new(vec![vec![new_code]])];
        let src = Arc::new(MergedSource::new(
            "t",
            handles,
            fields,
            500,
            Arc::new(vec![]),
            delta,
        ));
        let scan = MergedScan::all(src, true);
        assert!(matches!(scan.schema().fields[0].repr, Repr::Scalar));
        let blocks = drain(Box::new(scan));
        let last = blocks.last().unwrap();
        assert_eq!(last.columns[0], vec![999]);
        let all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        assert_eq!(all.len(), 501);
        assert!(all[..500].iter().all(|v| [100, 200, 300].contains(v)));
    }

    #[test]
    fn projection_keeps_order_and_values() {
        let t = base_table(10);
        let handles = ColumnHandle::all(&t);
        let fields: Vec<Field> = handles.iter().map(|h| h.field(false)).collect();
        let heap = match &fields[1].repr {
            Repr::Token(h) => Arc::clone(h),
            _ => unreachable!(),
        };
        let t_x = tok(&heap, "x");
        let delta = vec![Block::new(vec![vec![77], vec![t_x]])];
        let src = Arc::new(MergedSource::new(
            "t",
            handles,
            fields,
            10,
            Arc::new(vec![]),
            delta,
        ));
        // Project only the string column.
        let idx = src.index_of("s").unwrap();
        let mut scan = MergedScan::new(Arc::clone(&src), vec![idx], false);
        assert_eq!(scan.schema().fields.len(), 1);
        let b = scan.next_block().unwrap();
        assert_eq!(
            scan.schema().fields[0].value_of(b.columns[0][0]),
            Value::Str("x".into())
        );
    }
}

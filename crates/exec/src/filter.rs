//! Filter (Select): a flow operator applying a predicate per block.

use crate::block::{Block, Schema};
use crate::expr::{eval, ComputeHeap, Expr};
use crate::{BoxOp, Operator};

/// Keeps the rows for which `predicate` evaluates to true.
pub struct Filter {
    input: BoxOp,
    predicate: Expr,
    compute_heap: Option<ComputeHeap>,
    schema: Schema,
}

impl Filter {
    /// Wrap `input` with `predicate`.
    pub fn new(input: BoxOp, predicate: Expr) -> Filter {
        let schema = input.schema().clone();
        Filter {
            input,
            predicate,
            compute_heap: Some(ComputeHeap::new()),
            schema,
        }
    }
}

impl Operator for Filter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        loop {
            let mut block = self.input.next_block()?;
            let mut heap = self.compute_heap.as_mut();
            let mask = eval(&self.predicate, &self.schema, &block, &mut heap);
            let keep: Vec<bool> = mask.data.iter().map(|&b| b != 0).collect();
            block.filter(&keep);
            if block.len > 0 {
                return Some(block);
            }
            // Fully filtered block: pull the next one rather than emitting
            // empty blocks downstream.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use crate::scan::TableScan;
    use crate::{count_rows, drain};
    use std::sync::Arc;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::DataType;

    fn table(n: i64) -> Arc<tde_storage::Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        for i in 0..n {
            a.append_i64(i % 100);
        }
        Arc::new(Table::new("t", vec![a.finish().column]))
    }

    #[test]
    fn filters_rows() {
        let scan = Box::new(TableScan::new(table(10_000)));
        let f = Filter::new(scan, Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(90)));
        assert_eq!(count_rows(Box::new(f)), 1000);
    }

    #[test]
    fn empty_result() {
        let scan = Box::new(TableScan::new(table(5000)));
        let f = Filter::new(scan, Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(1000)));
        assert_eq!(count_rows(Box::new(f)), 0);
    }

    #[test]
    fn values_survive() {
        let scan = Box::new(TableScan::new(table(500)));
        let f = Filter::new(scan, Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(7)));
        let blocks = drain(Box::new(f));
        let all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        assert!(all.iter().all(|&v| v == 7));
        assert_eq!(all.len(), 5);
    }
}

//! Project (Compute): a flow operator evaluating expressions per block.

use crate::block::{Block, Field, Schema};
use crate::expr::{eval, ComputeHeap, Expr};
use crate::{BoxOp, Operator};

/// Computes one output column per expression.
pub struct Project {
    input: BoxOp,
    exprs: Vec<Expr>,
    compute_heap: Option<ComputeHeap>,
    schema: Schema,
    names: Vec<String>,
}

impl Project {
    /// Wrap `input`; output column `i` is `exprs[i]` named `names[i]`.
    pub fn new(input: BoxOp, exprs: Vec<(String, Expr)>) -> Project {
        // Evaluate against an empty block to derive the output schema.
        let probe = Block::empty(input.schema().len());
        let mut compute_heap = Some(ComputeHeap::new());
        let mut fields = Vec::with_capacity(exprs.len());
        let mut names = Vec::with_capacity(exprs.len());
        for (name, e) in &exprs {
            let mut heap = compute_heap.as_mut();
            let out = eval(e, input.schema(), &probe, &mut heap);
            let mut f: Field = out.field;
            f.name = name.clone();
            // Column pass-throughs keep their metadata; computed columns
            // start unknown (FlowTable re-derives it).
            if !matches!(e, Expr::Col(_)) {
                f.metadata = tde_encodings::ColumnMetadata::unknown();
            }
            fields.push(f);
            names.push(name.clone());
        }
        Project {
            input,
            exprs: exprs.into_iter().map(|(_, e)| e).collect(),
            compute_heap,
            schema: Schema::new(fields),
            names,
        }
    }
}

impl Operator for Project {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        let block = self.input.next_block()?;
        let in_schema = self.input.schema();
        let mut columns = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            let mut heap = self.compute_heap.as_mut();
            columns.push(eval(e, in_schema, &block, &mut heap).data);
        }
        let _ = &self.names;
        Some(Block {
            columns,
            len: block.len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ArithOp, Func};
    use crate::scan::TableScan;
    use std::sync::Arc;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::{DataType, Value};

    #[test]
    fn computes_expressions() {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        for i in 0..100i64 {
            a.append_i64(i);
        }
        let t = Arc::new(Table::new("t", vec![a.finish().column]));
        let mut p = Project::new(
            Box::new(TableScan::new(t)),
            vec![
                ("a".into(), Expr::col(0)),
                (
                    "a2".into(),
                    Expr::Arith(ArithOp::Mul, Box::new(Expr::col(0)), Box::new(Expr::int(2))),
                ),
            ],
        );
        assert_eq!(p.schema().fields[1].name, "a2");
        let b = p.next_block().unwrap();
        assert_eq!(b.columns[1][7], 14);
    }

    #[test]
    fn string_function_column() {
        let mut s = ColumnBuilder::new("url", DataType::Str, EncodingPolicy::default());
        for i in 0..50 {
            s.append_str(Some(&format!("/f{i}.{}", ["html", "css"][i % 2])));
        }
        let t = Arc::new(Table::new("t", vec![s.finish().column]));
        let mut p = Project::new(
            Box::new(TableScan::new(t)),
            vec![(
                "ext".into(),
                Expr::Func(Func::FileExtension, Box::new(Expr::col(0))),
            )],
        );
        let schema = p.schema().clone();
        let b = p.next_block().unwrap();
        assert_eq!(
            schema.fields[0].value_of(b.columns[0][0]),
            Value::Str("html".into())
        );
        assert_eq!(
            schema.fields[0].value_of(b.columns[0][1]),
            Value::Str("css".into())
        );
    }
}

//! Top-N: a bounded-memory ordered head, the workhorse of "top 10 …"
//! dashboard panels. A stop-and-go operator that keeps only the best `n`
//! rows in a binary heap instead of sorting the whole input.

use crate::block::{Block, Schema};
use crate::sort::SortOrder;
use crate::{BoxOp, Operator, BLOCK_ROWS};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tde_types::DataType;

/// One retained row plus its key ordering.
struct Entry {
    key: Vec<i64>,
    key_real: Vec<bool>,
    dirs: Vec<SortOrder>,
    row: Vec<i64>,
}

impl Entry {
    fn cmp_keys(&self, other: &Self) -> Ordering {
        for ((&a, &b), (&real, &dir)) in self
            .key
            .iter()
            .zip(&other.key)
            .zip(self.key_real.iter().zip(&self.dirs))
        {
            let o = if real {
                f64::from_bits(a as u64)
                    .partial_cmp(&f64::from_bits(b as u64))
                    .unwrap_or(Ordering::Equal)
            } else {
                a.cmp(&b)
            };
            let o = match dir {
                SortOrder::Asc => o,
                SortOrder::Desc => o.reverse(),
            };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    }
}

// BinaryHeap is a max-heap; the max entry is the *worst* retained row.
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_keys(other)
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_keys(other) == Ordering::Equal
    }
}
impl Eq for Entry {}

/// Keeps the first `n` rows of the input under the given ordering.
pub struct TopN {
    input: Option<BoxOp>,
    keys: Vec<(usize, SortOrder)>,
    n: usize,
    schema: Schema,
    output: Vec<Block>,
    next: usize,
}

impl TopN {
    /// Top `n` rows of `input` ordered by `keys`.
    pub fn new(input: BoxOp, keys: Vec<(usize, SortOrder)>, n: usize) -> TopN {
        let schema = input.schema().clone();
        TopN {
            input: Some(input),
            keys,
            n,
            schema,
            output: Vec::new(),
            next: 0,
        }
    }

    fn run(&mut self) {
        let mut input = self.input.take().expect("TopN already ran");
        let dirs: Vec<SortOrder> = self.keys.iter().map(|&(_, d)| d).collect();
        let key_real: Vec<bool> = self
            .keys
            .iter()
            .map(|&(c, _)| {
                self.schema.fields[c].dtype == DataType::Real
                    && self.schema.fields[c].repr.is_scalar()
            })
            .collect();
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(self.n + 1);
        while let Some(b) = input.next_block() {
            for r in 0..b.len {
                let key: Vec<i64> = self.keys.iter().map(|&(c, _)| b.columns[c][r]).collect();
                let entry = Entry {
                    key,
                    key_real: key_real.clone(),
                    dirs: dirs.clone(),
                    row: b.columns.iter().map(|c| c[r]).collect(),
                };
                if heap.len() < self.n {
                    heap.push(entry);
                } else if let Some(worst) = heap.peek() {
                    if entry.cmp_keys(worst) == Ordering::Less {
                        heap.pop();
                        heap.push(entry);
                    }
                }
            }
        }
        let mut rows = heap.into_sorted_vec(); // ascending by ordering
        let ncols = self.schema.len();
        let mut at = 0;
        while at < rows.len() {
            let take = BLOCK_ROWS.min(rows.len() - at);
            let mut columns = vec![Vec::with_capacity(take); ncols];
            for e in &rows[at..at + take] {
                for (c, col) in columns.iter_mut().enumerate() {
                    col.push(e.row[c]);
                }
            }
            self.output.push(Block { columns, len: take });
            at += take;
        }
        rows.clear();
    }
}

impl Operator for TopN {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.input.is_some() {
            self.run();
        }
        let b = self.output.get(self.next).cloned();
        self.next += 1;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TableScan;
    use std::sync::Arc;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};

    fn table(n: i64) -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut b = ColumnBuilder::new("b", DataType::Integer, EncodingPolicy::default());
        for i in 0..n {
            a.append_i64((i * 7919) % 1000);
            b.append_i64(i);
        }
        Arc::new(Table::new("t", vec![a.finish().column, b.finish().column]))
    }

    fn collect(op: TopN) -> Vec<(i64, i64)> {
        crate::drain(Box::new(op))
            .iter()
            .flat_map(|b| {
                b.columns[0]
                    .iter()
                    .zip(&b.columns[1])
                    .map(|(&x, &y)| (x, y))
            })
            .collect()
    }

    #[test]
    fn matches_full_sort_head() {
        let t = table(20_000);
        let got = collect(TopN::new(
            Box::new(TableScan::new(t.clone())),
            vec![(0, SortOrder::Asc), (1, SortOrder::Asc)],
            25,
        ));
        // Reference: full sort.
        let mut all: Vec<(i64, i64)> = (0..20_000).map(|i| (((i * 7919) % 1000), i)).collect();
        all.sort_unstable();
        assert_eq!(got, all[..25].to_vec());
    }

    #[test]
    fn descending_top() {
        let t = table(5000);
        let got = collect(TopN::new(
            Box::new(TableScan::new(t)),
            vec![(1, SortOrder::Desc)],
            3,
        ));
        assert_eq!(
            got.iter().map(|r| r.1).collect::<Vec<_>>(),
            vec![4999, 4998, 4997]
        );
    }

    #[test]
    fn n_larger_than_input() {
        let t = table(10);
        let got = collect(TopN::new(
            Box::new(TableScan::new(t)),
            vec![(1, SortOrder::Asc)],
            100,
        ));
        assert_eq!(got.len(), 10);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}

//! Parallel ordered aggregation over partitioned index ranges (paper §8).
//!
//! The paper sketches this as future work: take the IndexTable of a sorted
//! (e.g. date) column, optionally roll its values up through an
//! order-preserving calculation (month start, year start — see
//! [`crate::index_table::rollup_index`]), then *partition the index range*
//! and run the scan-plus-ordered-aggregation for each partition on a
//! separate core. Partition boundaries fall on value boundaries, so no
//! group spans two partitions and the concatenated partial results are the
//! exact grouped output, still in value order.
//!
//! This generalizes the paper's observation (§3.3/§8) that *work on
//! independent columns parallelizes with minimal synchronization* to
//! independent ranges of one index.

use crate::aggregate::{AggSpec, OrderedAggregate};
use crate::block::{Block, Schema};
use crate::indexed_scan::IndexedScan;
use crate::scan::TableScan;
use crate::Operator;
use std::sync::Arc;
use tde_storage::{ColumnBuilder, EncodingPolicy, Table};

/// Split an IndexTable (columns `value`, `count`, `start`, sorted by
/// value) into at most `parts` contiguous sub-tables whose boundaries fall
/// between distinct values.
pub fn partition_index(index: &Arc<Table>, parts: usize) -> Vec<Arc<Table>> {
    let values = index.columns[0].data.decode_all();
    let counts = index.columns[1].data.decode_all();
    let starts = index.columns[2].data.decode_all();
    let n = values.len();
    if n == 0 {
        return vec![];
    }
    debug_assert!(
        values.windows(2).all(|w| w[0] <= w[1]),
        "index must be value-sorted"
    );
    let parts = parts.clamp(1, n);
    let target = n.div_ceil(parts);
    let mut tables = Vec::new();
    let mut begin = 0usize;
    while begin < n {
        let mut end = (begin + target).min(n);
        // Push the boundary forward past any run of equal values.
        while end < n && values[end] == values[end - 1] {
            end += 1;
        }
        let mut value =
            ColumnBuilder::new("value", index.columns[0].dtype, EncodingPolicy::default());
        let mut count =
            ColumnBuilder::new("count", index.columns[1].dtype, EncodingPolicy::default());
        let mut start =
            ColumnBuilder::new("start", index.columns[2].dtype, EncodingPolicy::default());
        value.append_raw(&values[begin..end]);
        count.append_raw(&counts[begin..end]);
        start.append_raw(&starts[begin..end]);
        tables.push(Arc::new(Table::new(
            format!("{}_part{}", index.name, tables.len()),
            vec![
                value.finish().column,
                count.finish().column,
                start.finish().column,
            ],
        )));
        begin = end;
    }
    tables
}

/// Run the §8 pipeline: for each partition of the (value-sorted) index,
/// IndexedScan the qualified ranges of `outer` fetching `fetch` columns,
/// aggregate ordered by the index value, and concatenate the partial
/// results in partition order. `workers` caps the threads.
pub fn parallel_indexed_aggregate(
    index: &Arc<Table>,
    outer: &Arc<Table>,
    fetch: &[&str],
    aggs: Vec<AggSpec>,
    workers: usize,
) -> (Schema, Vec<Block>) {
    let partitions = partition_index(index, workers.max(1));
    if partitions.is_empty() {
        // Derive the schema from an empty run over the whole index.
        let scan = IndexedScan::new(
            Box::new(TableScan::new(index.clone())),
            outer.clone(),
            fetch,
        );
        let agg = OrderedAggregate::new(Box::new(scan), vec![0], aggs);
        return (agg.schema().clone(), vec![]);
    }
    let results: Vec<(Schema, Vec<Block>)> = std::thread::scope(|s| {
        let handles: Vec<_> = partitions
            .iter()
            .map(|part| {
                let part = part.clone();
                let outer = outer.clone();
                let aggs = aggs.clone();
                s.spawn(move || {
                    let scan = IndexedScan::new(Box::new(TableScan::new(part)), outer, fetch);
                    let mut agg = OrderedAggregate::new(Box::new(scan), vec![0], aggs);
                    let schema = agg.schema().clone();
                    let mut blocks = Vec::new();
                    while let Some(b) = agg.next_block() {
                        blocks.push(b);
                    }
                    (schema, blocks)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition worker panicked"))
            .collect()
    });
    let schema = results[0].0.clone();
    let blocks = results.into_iter().flat_map(|(_, b)| b).collect();
    (schema, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggFunc;
    use crate::index_table::{index_table, rollup_index};
    use std::collections::BTreeMap;
    use tde_encodings::{EncodedStream, BLOCK_SIZE};
    use tde_storage::Column;
    use tde_types::datetime::{days_from_ymd, trunc_to_month};
    use tde_types::{DataType, Width};

    /// A sorted daily date column (RLE) plus a payload.
    fn dated_table(days: i64, per_day: usize) -> (Arc<Table>, Vec<i64>, Vec<i64>) {
        let d0 = days_from_ymd(1995, 1, 1);
        let mut dates = Vec::new();
        let mut pay = Vec::new();
        for d in 0..days {
            for j in 0..per_day {
                dates.push(d0 + d);
                pay.push((d * 31 + j as i64) % 1000);
            }
        }
        let mut date_stream = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W4);
        for c in dates.chunks(BLOCK_SIZE) {
            date_stream.append_block(c).unwrap();
        }
        let pay_stream = tde_encodings::dynamic::encode_all(&pay, Width::W8, true).stream;
        let t = Arc::new(Table::new(
            "t",
            vec![
                Column::scalar("day", DataType::Date, date_stream),
                Column::scalar("pay", DataType::Integer, pay_stream),
            ],
        ));
        (t, dates, pay)
    }

    #[test]
    fn partitions_respect_value_boundaries() {
        let (t, _, _) = dated_table(100, 37);
        let (idx, _) = index_table(&t.columns[0], "idx");
        let parts = partition_index(&idx, 4);
        assert!(parts.len() >= 2 && parts.len() <= 4);
        let mut last: Option<i64> = None;
        let mut total_rows = 0;
        for p in &parts {
            let vals = p.columns[0].data.decode_all();
            if let (Some(prev), Some(&first)) = (last, vals.first()) {
                assert!(first > prev, "group split across partitions");
            }
            last = vals.last().copied();
            total_rows += p.row_count();
        }
        assert_eq!(total_rows, idx.row_count());
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let (t, dates, pay) = dated_table(60, 53);
        let (idx, _) = index_table(&t.columns[0], "idx");
        let aggs = vec![
            AggSpec::new(AggFunc::Count, 1, "n"),
            AggSpec::new(AggFunc::Max, 1, "mx"),
        ];
        let (_, blocks) = parallel_indexed_aggregate(&idx, &t, &["pay"], aggs, 4);
        let mut got: Vec<(i64, i64, i64)> = Vec::new();
        for b in &blocks {
            for r in 0..b.len {
                got.push((b.columns[0][r], b.columns[1][r], b.columns[2][r]));
            }
        }
        // Output is globally ordered by the index value.
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        // Reference.
        let mut reference: BTreeMap<i64, (i64, i64)> = BTreeMap::new();
        for (&d, &p) in dates.iter().zip(&pay) {
            let e = reference.entry(d).or_insert((0, i64::MIN));
            e.0 += 1;
            e.1 = e.1.max(p);
        }
        assert_eq!(got.len(), reference.len());
        for (g, (k, (n, mx))) in got.iter().zip(reference) {
            assert_eq!(*g, (k, n, mx));
        }
    }

    #[test]
    fn rollup_then_parallel_aggregate() {
        // The full §8 proposal: roll daily dates up to month starts on the
        // index (MIN(start), SUM(count)), then aggregate in parallel.
        let (t, dates, _) = dated_table(90, 29); // three months of 1995
        let (idx, _) = index_table(&t.columns[0], "daily");
        let (monthly, _) = rollup_index(&idx, trunc_to_month, "monthly");
        assert_eq!(monthly.row_count(), 3);
        let aggs = vec![AggSpec::new(AggFunc::Count, 1, "n")];
        let (_, blocks) = parallel_indexed_aggregate(&monthly, &t, &["pay"], aggs, 3);
        let mut got: Vec<(i64, i64)> = Vec::new();
        for b in &blocks {
            for r in 0..b.len {
                got.push((b.columns[0][r], b.columns[1][r]));
            }
        }
        let jan = days_from_ymd(1995, 1, 1);
        let feb = days_from_ymd(1995, 2, 1);
        let mar = days_from_ymd(1995, 3, 1);
        assert_eq!(
            got,
            vec![(jan, 31 * 29), (feb, 28 * 29), (mar, 31 * 29)],
            "dates: {} total",
            dates.len()
        );
    }

    #[test]
    fn single_partition_and_oversubscription() {
        let (t, _, _) = dated_table(5, 11);
        let (idx, _) = index_table(&t.columns[0], "idx");
        // More workers than index rows: clamps to one row per partition.
        let parts = partition_index(&idx, 64);
        assert_eq!(parts.len(), 5);
        let aggs = vec![AggSpec::new(AggFunc::Count, 1, "n")];
        let (_, blocks) = parallel_indexed_aggregate(&idx, &t, &["pay"], aggs.clone(), 64);
        let total: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(total, 5);
        // And a single worker degenerates to the serial pipeline.
        let (_, blocks1) = parallel_indexed_aggregate(&idx, &t, &["pay"], aggs, 1);
        let total1: usize = blocks1.iter().map(|b| b.len).sum();
        assert_eq!(total1, 5);
    }
}

//! Global aggregation over run-length runs without expansion.
//!
//! A grand total (no group keys) over a single run-length column never
//! needs the rows: `COUNT` sums run counts, `SUM` folds `value × count`
//! per run, `MIN`/`MAX` test one value per run. An optional pushed
//! predicate is compiled to a [`ValueSet`] and tested once per run too —
//! the §3.3 compressed-domain evaluation applied to the aggregation
//! pipeline. Results are bit-for-bit identical to folding the expanded
//! rows (integer `SUM` wraps, so `value × count` is the same fold mod
//! 2^64).

use crate::aggregate::AggSpec;
use crate::block::{Block, Field, Schema};
use crate::expr::{AggFunc, Expr};
use crate::handle::ColumnHandle;
use crate::pushdown::compile_value_set;
use crate::Operator;
use tde_encodings::kernel::ValueSet;
use tde_encodings::{Algorithm, ColumnMetadata};
use tde_storage::Compression;
use tde_types::sentinel::NULL_I64;
use tde_types::DataType;

/// Grand-total aggregation over an RLE column, folding per run.
pub struct RunAggregate {
    handle: ColumnHandle,
    set: Option<ValueSet>,
    aggs: Vec<AggSpec>,
    schema: Schema,
    done: bool,
}

impl RunAggregate {
    /// Build when the shape qualifies: a plain (uncompressed,
    /// non-string, non-real) run-length column, every aggregate over it
    /// (or `COUNT`), and any pushed predicate compilable to a value
    /// set. Returns `None` otherwise — the tactical optimizer then
    /// lowers the ordinary aggregate.
    pub fn try_new(
        handle: ColumnHandle,
        predicate: Option<&Expr>,
        aggs: &[AggSpec],
    ) -> Option<RunAggregate> {
        {
            let col = handle.col();
            if col.data.algorithm() != Algorithm::RunLength
                || !matches!(col.compression, Compression::None)
                || matches!(col.dtype, DataType::Real | DataType::Str)
            {
                return None;
            }
        }
        if !aggs.iter().all(|a| a.func == AggFunc::Count || a.col == 0) {
            return None;
        }
        let set = match predicate {
            Some(p) => Some(compile_value_set(p)?),
            None => None,
        };
        let input_field = handle.field(false);
        let fields = aggs
            .iter()
            .map(|a| match a.func {
                AggFunc::Count => Field::scalar(a.name.clone(), DataType::Integer),
                _ => {
                    let mut f = input_field.clone();
                    f.metadata = ColumnMetadata::unknown();
                    f.name = a.name.clone();
                    f
                }
            })
            .collect();
        Some(RunAggregate {
            handle,
            set,
            aggs: aggs.to_vec(),
            schema: Schema::new(fields),
            done: false,
        })
    }
}

/// Accumulator mirroring the aggregate operator's integer-domain fold,
/// applied `count` rows at a time.
#[derive(Clone, Copy)]
struct RunAcc {
    value: i64,
    count: u64,
}

fn fold_run(acc: &mut RunAcc, func: AggFunc, value: i64, count: u64) {
    if func == AggFunc::Count {
        acc.count += count;
        return;
    }
    if value == NULL_I64 {
        return;
    }
    match func {
        AggFunc::Sum => {
            // Folding `value` row-by-row with wrapping adds equals one
            // wrapping multiply mod 2^64.
            acc.value = acc.value.wrapping_add(value.wrapping_mul(count as i64));
        }
        AggFunc::Min => {
            acc.value = if acc.count == 0 {
                value
            } else {
                acc.value.min(value)
            }
        }
        AggFunc::Max => {
            acc.value = if acc.count == 0 {
                value
            } else {
                acc.value.max(value)
            }
        }
        AggFunc::Count => unreachable!(),
    }
    acc.count += count;
}

impl Operator for RunAggregate {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.done {
            return None;
        }
        self.done = true;
        let col = self.handle.col();
        let mut accs = vec![RunAcc { value: 0, count: 0 }; self.aggs.len()];
        let runs = col.data.rle_run_iter().expect("RunAggregate on non-RLE");
        for (value, count) in runs {
            if let Some(set) = &self.set {
                if !set.contains(value) {
                    continue;
                }
            }
            for (acc, spec) in accs.iter_mut().zip(&self.aggs) {
                fold_run(acc, spec.func, value, count);
            }
        }
        // Like the ordinary global aggregate, empty input still yields
        // one row of empty aggregates (COUNT 0, NULL otherwise).
        let columns = accs
            .iter()
            .zip(&self.aggs)
            .map(|(acc, spec)| {
                vec![match spec.func {
                    AggFunc::Count => acc.count as i64,
                    _ if acc.count == 0 => NULL_I64,
                    _ => acc.value,
                }]
            })
            .collect();
        Some(Block { columns, len: 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::HashAggregate;
    use crate::expr::CmpOp;
    use crate::scan::TableScan;
    use crate::BoxOp;
    use std::sync::Arc;
    use tde_encodings::EncodedStream;
    use tde_storage::{Column, Table};
    use tde_types::Width;

    fn rle_table(data: &[i64]) -> Arc<Table> {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8);
        for chunk in data.chunks(tde_encodings::BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        Arc::new(Table::new(
            "t",
            vec![Column::scalar("v", DataType::Integer, s)],
        ))
    }

    fn specs() -> Vec<AggSpec> {
        vec![
            AggSpec::new(AggFunc::Count, 0, "n"),
            AggSpec::new(AggFunc::Sum, 0, "s"),
            AggSpec::new(AggFunc::Min, 0, "lo"),
            AggSpec::new(AggFunc::Max, 0, "hi"),
        ]
    }

    fn rows_of(mut op: BoxOp) -> Vec<Vec<i64>> {
        let mut out = Vec::new();
        while let Some(b) = op.next_block() {
            for r in 0..b.len {
                out.push(b.columns.iter().map(|c| c[r]).collect());
            }
        }
        out
    }

    fn via_hash(t: &Arc<Table>, predicate: Option<&Expr>) -> Vec<Vec<i64>> {
        let mut op: BoxOp = Box::new(TableScan::new(Arc::clone(t)));
        if let Some(p) = predicate {
            op = Box::new(crate::filter::Filter::new(op, p.clone()));
        }
        rows_of(Box::new(HashAggregate::new(op, vec![], specs())))
    }

    fn via_runs(t: &Arc<Table>, predicate: Option<&Expr>) -> Vec<Vec<i64>> {
        let handle = ColumnHandle::Shared {
            table: Arc::clone(t),
            idx: 0,
        };
        let agg = RunAggregate::try_new(handle, predicate, &specs()).expect("eligible");
        rows_of(Box::new(agg))
    }

    #[test]
    fn matches_row_at_a_time_aggregation() {
        let mut data = Vec::new();
        for v in 0..200i64 {
            data.extend(std::iter::repeat_n((v % 9) - 4, 17 + (v as usize % 29)));
        }
        data.push(NULL_I64);
        data.push(NULL_I64);
        let t = rle_table(&data);
        assert_eq!(via_runs(&t, None), via_hash(&t, None));
        let pred = Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(0));
        assert_eq!(via_runs(&t, Some(&pred)), via_hash(&t, Some(&pred)));
        // A predicate keeping nothing: COUNT 0, NULL for the rest.
        let none = Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(1000));
        assert_eq!(via_runs(&t, Some(&none)), via_hash(&t, Some(&none)));
    }

    #[test]
    fn empty_input_still_emits_one_row() {
        let t = rle_table(&[]);
        assert_eq!(via_runs(&t, None), via_hash(&t, None));
    }

    #[test]
    fn ineligible_shapes_decline() {
        let t = rle_table(&[1, 1, 2]);
        let handle = ColumnHandle::Shared {
            table: Arc::clone(&t),
            idx: 0,
        };
        // Uncompilable predicate.
        let p = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::col(0));
        assert!(RunAggregate::try_new(handle.clone(), Some(&p), &specs()).is_none());
        // Non-RLE column.
        let mut raw = EncodedStream::new_raw(Width::W8, true);
        raw.append_block(&[1, 2, 3]).unwrap();
        let t2 = Arc::new(Table::new(
            "r",
            vec![Column::scalar("v", DataType::Integer, raw)],
        ));
        let h2 = ColumnHandle::Shared { table: t2, idx: 0 };
        assert!(RunAggregate::try_new(h2, None, &specs()).is_none());
    }
}

//! IndexedScan: the rank join (paper §4.2.1).
//!
//! A join operator specialized for the IndexTable's range condition
//! `start <= rank < start + count`: instead of probing, it translates the
//! qualified (start, count) ranges directly into reads of the outer table,
//! in the order given by the inner table. Range skipping is thereby
//! expressed simply as a join in the query plan. When the inner rows are
//! sorted by *value* instead of *start*, the scan performs the §4.2.2
//! ordered retrieval that enables sandwiched aggregation on a
//! non-primary-sort column — at the cost of many small reads when the
//! runs are short, the degradation the 1M-row experiment exposes.

use crate::block::{Block, Field, Schema};
use crate::cursor::RangeReader;
use crate::handle::ColumnHandle;
use crate::{BoxOp, Operator, BLOCK_ROWS};
use std::io;
use std::sync::Arc;
use tde_encodings::metadata::Knowledge;
use tde_pager::PagedTable;
use tde_storage::Table;

/// IndexedScan operator.
pub struct IndexedScan {
    /// The (filtered, possibly sorted) index rows, fully drained up front:
    /// (start, count, carried columns).
    ranges: Vec<(u64, u64)>,
    carried: Vec<Vec<i64>>, // column-major, parallel to ranges
    /// The outer-table columns the qualified ranges read from (eager
    /// table positions or pager-resolved columns).
    fetch: Vec<ColumnHandle>,
    schema: Schema,
    next_range: usize,
    /// Rows of the current range already emitted (ranges can span many
    /// blocks; blocks can span many ranges).
    range_off: u64,
    readers: Vec<RangeReader>,
    /// Whether the ranges arrive in ascending start order (plan 2) or not
    /// (value-sorted ordered retrieval, plan 3).
    pub sequential: bool,
}

impl IndexedScan {
    /// Build from an inner operator whose schema contains `count` and
    /// `start` columns (an IndexTable pipeline); every *other* inner
    /// column is carried through repeated per row. `fetch` names the
    /// outer-table columns to read for the qualified ranges.
    pub fn new(inner: BoxOp, outer: Arc<Table>, fetch: &[&str]) -> IndexedScan {
        let handles = fetch
            .iter()
            .map(|n| {
                let idx = outer
                    .column_index(n)
                    .unwrap_or_else(|| panic!("no outer column {n}"));
                ColumnHandle::Shared {
                    table: Arc::clone(&outer),
                    idx,
                }
            })
            .collect();
        IndexedScan::from_handles(inner, handles)
    }

    /// Build against a paged outer table: the fetched columns resolve
    /// through the buffer pool; unreferenced outer columns stay on disk.
    pub fn new_paged(inner: BoxOp, outer: &PagedTable, fetch: &[&str]) -> io::Result<IndexedScan> {
        let handles = fetch
            .iter()
            .map(|n| outer.column(n).map(ColumnHandle::Owned))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(IndexedScan::from_handles(inner, handles))
    }

    /// Build from pre-resolved fetch handles.
    pub fn from_handles(mut inner: BoxOp, fetch: Vec<ColumnHandle>) -> IndexedScan {
        let ischema = inner.schema().clone();
        let count_col = ischema
            .index_of("count")
            .expect("inner must have a count column");
        let start_col = ischema
            .index_of("start")
            .expect("inner must have a start column");
        let carried_cols: Vec<usize> = (0..ischema.len())
            .filter(|&i| i != count_col && i != start_col)
            .collect();

        let mut ranges = Vec::new();
        let mut carried: Vec<Vec<i64>> = vec![Vec::new(); carried_cols.len()];
        while let Some(b) = inner.next_block() {
            for r in 0..b.len {
                ranges.push((
                    b.columns[start_col][r] as u64,
                    b.columns[count_col][r] as u64,
                ));
                for (k, &c) in carried_cols.iter().enumerate() {
                    carried[k].push(b.columns[c][r]);
                }
            }
        }
        let sequential = ranges.windows(2).all(|w| w[0].0 <= w[1].0);

        let mut fields: Vec<Field> = carried_cols
            .iter()
            .map(|&c| ischema.fields[c].clone())
            .collect();
        // Values arrive grouped by index row; if the index was sorted by
        // value the carried value column is sorted — assert it so the
        // downstream aggregate can go ordered (§4.2.2). Expansion repeats
        // each index row `count` times, so per-row claims (unique, dense)
        // do not survive even though ordering does.
        for (k, &c) in carried_cols.iter().enumerate() {
            fields[k].metadata.unique = Knowledge::Unknown;
            fields[k].metadata.dense = Knowledge::Unknown;
            if ischema.fields[c].metadata.sorted_asc.is_true() {
                fields[k].metadata.sorted_asc = Knowledge::True;
            }
        }
        for h in &fetch {
            fields.push(h.field(false));
        }
        let readers = fetch
            .iter()
            .map(|h| RangeReader::new(&h.col().data))
            .collect();
        IndexedScan {
            ranges,
            carried,
            fetch,
            schema: Schema::new(fields),
            next_range: 0,
            range_off: 0,
            readers,
            sequential,
        }
    }

    /// Total rows the qualified ranges cover.
    pub fn qualified_rows(&self) -> u64 {
        self.ranges.iter().map(|r| r.1).sum()
    }
}

impl Operator for IndexedScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.next_range >= self.ranges.len() {
            return None;
        }
        let ncarried = self.carried.len();
        let ncols = ncarried + self.fetch.len();
        let mut columns: Vec<Vec<i64>> = vec![Vec::with_capacity(BLOCK_ROWS); ncols];
        let mut filled = 0usize;
        // Fill exactly one block, consuming ranges incrementally: a long
        // range spans several blocks without any rebuffering, a block
        // gathers several short ranges.
        while filled < BLOCK_ROWS && self.next_range < self.ranges.len() {
            let (start, count) = self.ranges[self.next_range];
            let avail = count - self.range_off;
            let take = avail.min((BLOCK_ROWS - filled) as u64);
            for (k, col) in columns.iter_mut().take(ncarried).enumerate() {
                col.extend(std::iter::repeat_n(
                    self.carried[k][self.next_range],
                    take as usize,
                ));
            }
            for (k, reader) in self.readers.iter_mut().enumerate() {
                let stream = &self.fetch[k].col().data;
                reader.read_range(
                    stream,
                    start + self.range_off,
                    take,
                    &mut columns[ncarried + k],
                );
            }
            filled += take as usize;
            self.range_off += take;
            if self.range_off == count {
                self.next_range += 1;
                self.range_off = 0;
            }
        }
        if filled == 0 {
            return None;
        }
        Some(Block {
            columns,
            len: filled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::filter::Filter;
    use crate::index_table::index_table;
    use crate::scan::TableScan;
    use crate::sort::{Sort, SortOrder};
    use tde_encodings::{EncodedStream, BLOCK_SIZE};
    use tde_storage::Column;
    use tde_types::{DataType, Width};

    /// Two RLE columns: key (sorted runs) and payload.
    fn rle_table() -> (Arc<Table>, Vec<i64>, Vec<i64>) {
        let mut key_data = Vec::new();
        let mut pay_data = Vec::new();
        for v in 0..20i64 {
            for j in 0..250i64 {
                key_data.push(v);
                pay_data.push(v * 1000 + j % 50);
            }
        }
        let mut key = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for c in key_data.chunks(BLOCK_SIZE) {
            key.append_block(c).unwrap();
        }
        let pay = tde_encodings::dynamic::encode_all(&pay_data, Width::W8, true).stream;
        let t = Arc::new(Table::new(
            "t",
            vec![
                Column::scalar("key", DataType::Integer, key),
                Column::scalar("pay", DataType::Integer, pay),
            ],
        ));
        (t, key_data, pay_data)
    }

    #[test]
    fn filtered_index_scan_matches_row_filter() {
        let (t, key_data, pay_data) = rle_table();
        let (idx, _) = index_table(&t.columns[0], "idx");
        let inner = Filter::new(
            Box::new(TableScan::new(idx)),
            Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(15)),
        );
        let mut scan = IndexedScan::new(Box::new(inner), t, &["pay"]);
        assert!(scan.sequential);
        assert_eq!(scan.qualified_rows(), 5 * 250);
        let mut got_key = Vec::new();
        let mut got_pay = Vec::new();
        while let Some(b) = scan.next_block() {
            got_key.extend_from_slice(&b.columns[0][..b.len]);
            got_pay.extend_from_slice(&b.columns[1][..b.len]);
        }
        let expect: Vec<(i64, i64)> = key_data
            .iter()
            .zip(&pay_data)
            .filter(|(&k, _)| k >= 15)
            .map(|(&k, &p)| (k, p))
            .collect();
        assert_eq!(got_key.len(), expect.len());
        for (i, (ek, ep)) in expect.iter().enumerate() {
            assert_eq!((got_key[i], got_pay[i]), (*ek, *ep));
        }
    }

    #[test]
    fn value_sorted_index_gives_ordered_retrieval() {
        // Build a table whose key runs repeat values out of order, then
        // retrieve ordered by value (§4.2.2).
        let mut key_data = Vec::new();
        for &v in &[3i64, 1, 3, 2, 1] {
            key_data.extend(std::iter::repeat_n(v, 100));
        }
        let mut key = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W1);
        for c in key_data.chunks(BLOCK_SIZE) {
            key.append_block(c).unwrap();
        }
        let t = Arc::new(Table::new(
            "t",
            vec![Column::scalar("key", DataType::Integer, key)],
        ));
        let (idx, _) = index_table(&t.columns[0], "idx");
        let sorted = Sort::new(Box::new(TableScan::new(idx)), vec![(0, SortOrder::Asc)]);
        let mut scan = IndexedScan::new(Box::new(sorted), t, &[]);
        assert!(!scan.sequential);
        // The value column must now arrive fully sorted and be marked so.
        assert!(scan.schema().fields[0].metadata.sorted_asc.is_true());
        let mut got = Vec::new();
        while let Some(b) = scan.next_block() {
            got.extend_from_slice(&b.columns[0][..b.len]);
        }
        let mut expect = key_data.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_filter_produces_nothing() {
        let (t, _, _) = rle_table();
        let (idx, _) = index_table(&t.columns[0], "idx");
        let inner = Filter::new(
            Box::new(TableScan::new(idx)),
            Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(1000)),
        );
        let mut scan = IndexedScan::new(Box::new(inner), t, &["pay"]);
        assert!(scan.next_block().is_none());
    }
}

//! Column handles: how scan operators reference stored columns.
//!
//! The eager path shares one [`Table`] and addresses columns by index;
//! the paged path (crate `tde-pager`) hands out independent
//! `Arc<Column>`s demand-loaded through the buffer pool. A
//! [`ColumnHandle`] abstracts over both so the scan operators are
//! storage-agnostic.

use crate::block::{Field, Repr};
use std::sync::Arc;
use tde_storage::{Column, Compression, Table};

/// A reference to one stored column, by table position or by ownership.
#[derive(Debug, Clone)]
pub enum ColumnHandle {
    /// A column of a shared eager table.
    Shared {
        /// The table.
        table: Arc<Table>,
        /// Column index within the table.
        idx: usize,
    },
    /// An independently owned column (e.g. resolved through the pager).
    Owned(Arc<Column>),
}

impl ColumnHandle {
    /// The underlying column.
    pub fn col(&self) -> &Column {
        match self {
            ColumnHandle::Shared { table, idx } => &table.columns[*idx],
            ColumnHandle::Owned(c) => c,
        }
    }

    /// Every column of an eager table, as handles.
    pub fn all(table: &Arc<Table>) -> Vec<ColumnHandle> {
        (0..table.columns.len())
            .map(|idx| ColumnHandle::Shared {
                table: Arc::clone(table),
                idx,
            })
            .collect()
    }

    /// The execution-block field this column scans into.
    /// `expand_dictionaries` materializes array-compressed columns to
    /// scalars at the scan (the baseline that forgoes invisible joins).
    pub fn field(&self, expand_dictionaries: bool) -> Field {
        let c = self.col();
        let repr = match &c.compression {
            Compression::None => Repr::Scalar,
            Compression::Heap { heap, .. } => Repr::Token(heap.clone()),
            Compression::Array { dictionary, .. } => {
                if expand_dictionaries {
                    Repr::Scalar
                } else {
                    Repr::DictIndex(Arc::new(dictionary.clone()))
                }
            }
        };
        Field {
            name: c.name.clone(),
            dtype: c.dtype,
            repr,
            metadata: c.metadata.clone(),
        }
    }
}

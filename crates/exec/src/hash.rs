//! Grouping/join hash strategies (paper §2.3.4).
//!
//! Hashing performance is driven by key width: 1–2 bytes allows *direct*
//! hashing with a small 64K-element lookup table; 3–8 packed bytes admit a
//! *perfect* hash (the packed key is its own identity — no collision
//! detection, no tuple comparison); anything wider needs full *collision*
//! handling. Narrowing columns (§3.4.1) exists precisely to push keys down
//! this ladder.

use std::collections::HashMap;

/// The chosen grouping strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HashStrategy {
    /// Keys pack into ≤ 16 bits: direct index into a 64K table.
    Direct64K,
    /// Keys pack into ≤ 64 bits: hash of the packed key, no tuple compare.
    Perfect,
    /// Wide keys: full tuple hashing with collision detection.
    Collision,
}

impl HashStrategy {
    /// Human-readable name for explain output.
    pub fn name(self) -> &'static str {
        match self {
            HashStrategy::Direct64K => "direct-64k",
            HashStrategy::Perfect => "perfect",
            HashStrategy::Collision => "collision",
        }
    }
}

/// Packing plan for the direct/perfect strategies: per key column, a bias
/// (the column minimum) and a bit shift.
#[derive(Debug, Clone)]
pub struct KeyPacking {
    /// Per-column (bias, shift, bits).
    pub parts: Vec<(i64, u32, u32)>,
    /// Total packed bits.
    pub total_bits: u32,
}

impl KeyPacking {
    /// Plan a packing from per-column (min, max) ranges. Returns `None`
    /// when a range is unknown or the packed key exceeds 64 bits.
    pub fn plan(ranges: &[Option<(i64, i64)>]) -> Option<KeyPacking> {
        let mut parts = Vec::with_capacity(ranges.len());
        let mut shift = 0u32;
        for r in ranges {
            let (lo, hi) = (*r)?;
            let span = (hi as i128) - (lo as i128);
            debug_assert!(span >= 0);
            let bits = if span == 0 {
                0
            } else {
                128 - (span as u128).leading_zeros()
            };
            if shift + bits > 64 {
                return None;
            }
            parts.push((lo, shift, bits));
            shift += bits;
        }
        Some(KeyPacking {
            parts,
            total_bits: shift,
        })
    }

    /// Pack one key tuple.
    #[inline]
    pub fn pack(&self, key: &[i64]) -> u64 {
        let mut out = 0u64;
        for (v, (bias, shift, _)) in key.iter().zip(&self.parts) {
            out |= ((v.wrapping_sub(*bias)) as u64) << shift;
        }
        out
    }
}

/// A group map: key tuple → dense group id.
pub enum GroupMap {
    /// Direct 64K lookup table.
    Direct {
        packing: KeyPacking,
        table: Vec<u32>,
        keys: Vec<Vec<i64>>,
    },
    /// Perfect hash on the packed key.
    Perfect {
        packing: KeyPacking,
        map: HashMap<u64, u32>,
        keys: Vec<Vec<i64>>,
    },
    /// Collision-checked tuple hash.
    Collision {
        map: HashMap<Vec<i64>, u32>,
        keys: Vec<Vec<i64>>,
    },
}

const EMPTY: u32 = u32::MAX;

impl GroupMap {
    /// Build a map for the chosen strategy (`packing` required for the
    /// packed strategies).
    pub fn new(strategy: HashStrategy, packing: Option<KeyPacking>) -> GroupMap {
        match strategy {
            HashStrategy::Direct64K => GroupMap::Direct {
                packing: packing.expect("direct strategy needs a packing"),
                table: vec![EMPTY; 1 << 16],
                keys: Vec::new(),
            },
            HashStrategy::Perfect => GroupMap::Perfect {
                packing: packing.expect("perfect strategy needs a packing"),
                map: HashMap::new(),
                keys: Vec::new(),
            },
            HashStrategy::Collision => GroupMap::Collision {
                map: HashMap::new(),
                keys: Vec::new(),
            },
        }
    }

    /// The group id for `key`, allocating a new group on first sight.
    #[inline]
    pub fn get_or_insert(&mut self, key: &[i64]) -> usize {
        match self {
            GroupMap::Direct {
                packing,
                table,
                keys,
            } => {
                let packed = packing.pack(key) as usize;
                let slot = &mut table[packed];
                if *slot == EMPTY {
                    *slot = keys.len() as u32;
                    keys.push(key.to_vec());
                }
                *slot as usize
            }
            GroupMap::Perfect { packing, map, keys } => {
                let packed = packing.pack(key);
                *map.entry(packed).or_insert_with(|| {
                    keys.push(key.to_vec());
                    (keys.len() - 1) as u32
                }) as usize
            }
            GroupMap::Collision { map, keys } => {
                if let Some(&g) = map.get(key) {
                    return g as usize;
                }
                let g = keys.len() as u32;
                keys.push(key.to_vec());
                map.insert(key.to_vec(), g);
                g as usize
            }
        }
    }

    /// The distinct keys in group-id order.
    pub fn keys(&self) -> &[Vec<i64>] {
        match self {
            GroupMap::Direct { keys, .. }
            | GroupMap::Perfect { keys, .. }
            | GroupMap::Collision { keys, .. } => keys,
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys().len()
    }

    /// Whether no group has been seen.
    pub fn is_empty(&self) -> bool {
        self.keys().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(mut m: GroupMap) {
        let keys: Vec<Vec<i64>> = (0..50).map(|i| vec![i % 10, 100 + i % 5]).collect();
        let mut ids = Vec::new();
        for k in &keys {
            ids.push(m.get_or_insert(k));
        }
        // 10 × 5 combinations but correlated: i%10 and i%5 give 10 groups.
        assert_eq!(m.len(), 10);
        // Same key, same id.
        for (k, &id) in keys.iter().zip(&ids) {
            assert_eq!(m.get_or_insert(k), id);
            assert_eq!(&m.keys()[id], k);
        }
    }

    #[test]
    fn all_strategies_agree() {
        let ranges = [Some((0i64, 9)), Some((100, 104))];
        let packing = KeyPacking::plan(&ranges).unwrap();
        assert!(packing.total_bits <= 16);
        exercise(GroupMap::new(
            HashStrategy::Direct64K,
            Some(packing.clone()),
        ));
        exercise(GroupMap::new(HashStrategy::Perfect, Some(packing)));
        exercise(GroupMap::new(HashStrategy::Collision, None));
    }

    #[test]
    fn packing_plan_bounds() {
        // 2^32 span twice = 64 bits: fits exactly.
        let p =
            KeyPacking::plan(&[Some((0, (1i64 << 32) - 1)), Some((0, (1i64 << 32) - 1))]).unwrap();
        assert_eq!(p.total_bits, 64);
        // One more bit does not fit.
        assert!(KeyPacking::plan(&[Some((0, (1i64 << 32) - 1)), Some((0, 1i64 << 32)),]).is_none());
        // Unknown range defeats packing.
        assert!(KeyPacking::plan(&[None]).is_none());
    }

    #[test]
    fn packing_handles_negative_bias() {
        let p = KeyPacking::plan(&[Some((-50, 49))]).unwrap();
        assert_eq!(p.pack(&[-50]), 0);
        assert_eq!(p.pack(&[49]), 99);
    }

    #[test]
    fn constant_key_packs_to_zero_bits() {
        let p = KeyPacking::plan(&[Some((7, 7)), Some((0, 3))]).unwrap();
        assert_eq!(p.total_bits, 2);
        assert_eq!(p.pack(&[7, 2]), 2);
    }
}

//! Exchange: intra-query parallelism over blocks (paper §4.3, [8]).
//!
//! Worker threads apply a per-block transformation in parallel. By default
//! blocks are emitted as they complete, which disturbs block order — and
//! the quality of downstream encodings is sensitive to data order, so a
//! disturbed stream can encode much worse and physically grow. When the
//! strategic optimizer sees an encoder downstream it forces
//! *order-preserving routing*: blocks are numbered and released in order
//! (the paper measured a 10–15 % overhead for this constraint, experiment
//! E8).

use crate::block::{Block, Schema};
use crate::{BoxOp, Operator};
use crossbeam::channel::{bounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A per-block transformation applied by the workers. It must be pure
/// per block (workers share only read-only state).
pub type BlockFn = Arc<dyn Fn(Block) -> Block + Send + Sync>;

/// Routing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// Emit blocks as workers finish them (fastest, disturbs order).
    AsCompleted,
    /// Number blocks and release them in input order.
    OrderPreserving,
}

/// Parallel block-map operator.
pub struct Exchange {
    schema: Schema,
    rx: Option<Receiver<(u64, Block)>>,
    routing: Routing,
    reorder: BTreeMap<u64, Block>,
    next_seq: u64,
    workers: Vec<JoinHandle<()>>,
    feeder: Option<JoinHandle<()>>,
    /// First worker-panic message. A panicking worker would otherwise
    /// just drop its block and its channel ends — the stream would close
    /// looking complete, silently short. The consumer re-raises this
    /// instead of returning a truncated result.
    poison: Arc<Mutex<Option<String>>>,
}

impl Exchange {
    /// Run `f` over `input`'s blocks on `workers` threads. `out_schema`
    /// describes `f`'s output (pass the input schema for shape-preserving
    /// transforms like filters).
    pub fn new(
        mut input: BoxOp,
        f: BlockFn,
        workers: usize,
        routing: Routing,
        out_schema: Schema,
    ) -> Exchange {
        let workers = workers.max(1);
        tde_obs::metrics::decision(
            "exchange",
            match routing {
                Routing::AsCompleted => "AsCompleted",
                Routing::OrderPreserving => "OrderPreserving",
            },
        );
        tde_obs::emit(|| tde_obs::Event::Decision {
            point: "exchange",
            choice: format!("{routing:?}"),
            reason: format!(
                "{workers} worker(s); {}",
                match routing {
                    Routing::AsCompleted => "no encoder downstream: emit blocks as completed",
                    Routing::OrderPreserving =>
                        "encoder downstream is order-sensitive: number and release blocks in order",
                }
            ),
        });
        let (task_tx, task_rx) = bounded::<(u64, Block)>(workers * 2);
        let (out_tx, out_rx) = bounded::<(u64, Block)>(workers * 2);
        let feeder = std::thread::spawn(move || {
            let mut seq = 0u64;
            while let Some(b) = input.next_block() {
                if task_tx.send((seq, b)).is_err() {
                    break;
                }
                seq += 1;
            }
        });
        let poison: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let rx: Receiver<(u64, Block)> = task_rx.clone();
                let tx: Sender<(u64, Block)> = out_tx.clone();
                let f = f.clone();
                let poison = Arc::clone(&poison);
                std::thread::spawn(move || {
                    while let Ok((seq, block)) = rx.recv() {
                        let out = match catch_unwind(AssertUnwindSafe(|| f(block))) {
                            Ok(b) => b,
                            Err(p) => {
                                // Poison the stream, then hang up: the
                                // consumer re-raises on disconnect.
                                let msg = p
                                    .downcast_ref::<String>()
                                    .cloned()
                                    .or_else(|| p.downcast_ref::<&str>().map(|s| (*s).to_string()))
                                    .unwrap_or_else(|| "worker panicked".to_string());
                                poison
                                    .lock()
                                    .unwrap_or_else(|e| e.into_inner())
                                    .get_or_insert(msg);
                                break;
                            }
                        };
                        if tx.send((seq, out)).is_err() {
                            break;
                        }
                    }
                })
            })
            .collect();
        drop(task_rx);
        drop(out_tx);
        Exchange {
            schema: out_schema,
            rx: Some(out_rx),
            routing,
            reorder: BTreeMap::new(),
            next_seq: 0,
            workers: handles,
            feeder: Some(feeder),
            poison,
        }
    }

    /// Re-raise a worker panic in the consumer thread. Called when the
    /// output channel disconnects — never from `drop`, which may itself
    /// run during an unwind.
    fn check_poison(&self) {
        if let Some(msg) = self.poison.lock().unwrap_or_else(|e| e.into_inner()).take() {
            panic!("exchange worker panicked: {msg}");
        }
    }

    fn join_threads(&mut self) {
        if let Some(f) = self.feeder.take() {
            let _ = f.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Operator for Exchange {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        let rx = self.rx.clone()?;
        match self.routing {
            Routing::AsCompleted => loop {
                match rx.recv() {
                    Ok((_, b)) => {
                        if b.len > 0 {
                            return Some(b);
                        }
                    }
                    Err(_) => {
                        self.check_poison();
                        self.join_threads();
                        return None;
                    }
                }
            },
            Routing::OrderPreserving => loop {
                if let Some(b) = self.reorder.remove(&self.next_seq) {
                    self.next_seq += 1;
                    if b.len > 0 {
                        return Some(b);
                    }
                    continue;
                }
                match rx.recv() {
                    Ok((seq, b)) => {
                        self.reorder.insert(seq, b);
                    }
                    Err(_) => {
                        // A worker panic means the buffered tail is
                        // incomplete — error before draining it.
                        self.check_poison();
                        // Drain the reorder buffer (sequence numbers of
                        // empty blocks may have gaps at end).
                        if let Some((&seq, _)) = self.reorder.iter().next() {
                            let b = self.reorder.remove(&seq).unwrap();
                            self.next_seq = seq + 1;
                            if b.len > 0 {
                                return Some(b);
                            }
                            continue;
                        }
                        self.join_threads();
                        return None;
                    }
                }
            },
        }
    }
}

impl Drop for Exchange {
    fn drop(&mut self) {
        // Disconnect first: dropping the receiver makes worker sends fail,
        // workers exit, the task channel closes, and the feeder exits —
        // only then is joining deadlock-free.
        self.reorder.clear();
        self.rx = None;
        self.join_threads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TableScan;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::DataType;

    fn table(n: i64) -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        for i in 0..n {
            a.append_i64(i);
        }
        Arc::new(Table::new("t", vec![a.finish().column]))
    }

    fn slow_double() -> BlockFn {
        Arc::new(|mut b: Block| {
            // Uneven work so completion order scrambles.
            let spin = 10 + (b.columns[0][0] % 7) * 30;
            let mut x = 0u64;
            for i in 0..spin * 1000 {
                x = x.wrapping_add(i as u64);
            }
            std::hint::black_box(x);
            for v in &mut b.columns[0] {
                *v *= 2;
            }
            b
        })
    }

    #[test]
    fn order_preserving_keeps_input_order() {
        let scan = Box::new(TableScan::new(table(50_000)));
        let schema = scan.schema().clone();
        let ex = Exchange::new(scan, slow_double(), 4, Routing::OrderPreserving, schema);
        let blocks = crate::drain(Box::new(ex));
        let all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        let expect: Vec<i64> = (0..50_000).map(|i| i * 2).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn as_completed_preserves_multiset() {
        let scan = Box::new(TableScan::new(table(50_000)));
        let schema = scan.schema().clone();
        let ex = Exchange::new(scan, slow_double(), 4, Routing::AsCompleted, schema);
        let blocks = crate::drain(Box::new(ex));
        let mut all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..50_000).map(|i| i * 2).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn single_worker_degenerates_gracefully() {
        let scan = Box::new(TableScan::new(table(5000)));
        let schema = scan.schema().clone();
        let ex = Exchange::new(scan, slow_double(), 1, Routing::OrderPreserving, schema);
        assert_eq!(crate::count_rows(Box::new(ex)), 5000);
    }

    #[test]
    fn panicking_block_fn_poisons_the_consumer() {
        // Regression: a panicking worker used to drop its block and hang
        // up quietly — the consumer saw a clean, silently-short stream.
        for routing in [Routing::AsCompleted, Routing::OrderPreserving] {
            let scan = Box::new(TableScan::new(table(20_000)));
            let schema = scan.schema().clone();
            let bomb: BlockFn = Arc::new(|b: Block| {
                if b.columns[0][0] >= 4096 {
                    panic!("bad block at {}", b.columns[0][0]);
                }
                b
            });
            let ex = Exchange::new(scan, bomb, 4, routing, schema);
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| crate::drain(Box::new(ex))));
            let msg = *r
                .expect_err("consumer must observe the worker panic")
                .downcast::<String>()
                .unwrap();
            assert!(msg.contains("exchange worker panicked"), "{msg}");
            assert!(msg.contains("bad block"), "{msg}");
        }
    }

    #[test]
    fn drop_mid_stream_does_not_hang() {
        let scan = Box::new(TableScan::new(table(100_000)));
        let schema = scan.schema().clone();
        let mut ex = Exchange::new(scan, slow_double(), 4, Routing::AsCompleted, schema);
        let _ = ex.next_block();
        drop(ex); // must join cleanly
    }
}

//! Many-to-one joins: hash join and fetch join (paper §2.3.5).
//!
//! The Join operator takes a stop-and-go operator — a materialized table —
//! as its inner relation (§4.1.2). At construction the tactical optimizer
//! inspects the inner key column's metadata: a dense, unique, sorted key
//! means the inner row id is an affine transformation of the key value and
//! no lookup table is needed at all (the *fetch join*, the fastest join
//! available). This is the common case for primary-key/foreign-key joins
//! and especially for the expansion joins that decompress dictionary
//! columns.

use crate::block::{Block, Schema};
use crate::tactical::{self, JoinChoice};
use crate::{BoxOp, Operator};
use std::collections::HashMap;
use std::sync::Arc;
use tde_encodings::metadata::Knowledge;
use tde_storage::Table;

/// How unmatched outer rows are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Drop unmatched outer rows.
    Inner,
    /// Keep them with NULL inner values (Tableau's NULL join semantics
    /// lean on left joins for expansion).
    Left,
}

enum Lookup {
    Fetch { base: i64, len: i64 },
    Hash(HashMap<i64, u32>),
}

/// Joins a flowing outer against a materialized inner table on one key.
pub struct Join {
    outer: BoxOp,
    inner_cols: Vec<Vec<i64>>, // decoded inner columns to project
    inner_nulls: Vec<i64>,
    outer_key: usize,
    kind: JoinKind,
    lookup: Lookup,
    schema: Schema,
    /// The tactical decision that was made (for tests/explain).
    pub choice: JoinChoice,
}

impl Join {
    /// Join `outer.col(outer_key) == inner.col(inner_key)`, appending the
    /// `project` columns of `inner` to the output.
    pub fn new(
        outer: BoxOp,
        inner: &Arc<Table>,
        inner_schema: &Schema,
        outer_key: usize,
        inner_key: usize,
        project: &[usize],
        kind: JoinKind,
    ) -> Join {
        let choice = tactical::choose_join(&inner_schema.fields[inner_key]);
        let key_col = inner.columns[inner_key].data.decode_all();
        let lookup = match choice {
            JoinChoice::Fetch { base } => Lookup::Fetch {
                base,
                len: key_col.len() as i64,
            },
            JoinChoice::Hash => {
                let mut map = HashMap::with_capacity(key_col.len());
                for (row, &k) in key_col.iter().enumerate() {
                    map.insert(k, row as u32);
                }
                Lookup::Hash(map)
            }
        };
        let inner_cols: Vec<Vec<i64>> = project
            .iter()
            .map(|&c| inner.columns[c].data.decode_all())
            .collect();
        let inner_nulls: Vec<i64> = project
            .iter()
            .map(|&c| crate::block::null_raw(&inner_schema.fields[c]))
            .collect();
        // Joined-in columns are reordered by the outer key's probe order,
        // so order-dependent metadata only survives when the probe order
        // itself is monotone: outer key sorted and inner key sorted (row
        // id monotone in key). Uniqueness survives only when the outer
        // key never probes the same inner row twice. Value bounds and
        // cardinality remain valid as bounds either way.
        let outer_key_md = outer.schema().fields[outer_key].metadata.clone();
        let inner_key_md = &inner_schema.fields[inner_key].metadata;
        let order_kept = outer_key_md.sorted_asc.is_true() && inner_key_md.sorted_asc.is_true();
        let mut fields = outer.schema().fields.clone();
        for &c in project {
            let mut f = inner_schema.fields[c].clone();
            if !order_kept {
                f.metadata.sorted_asc = Knowledge::Unknown;
            }
            if !outer_key_md.unique.is_true() {
                f.metadata.unique = Knowledge::Unknown;
            }
            // An inner join can drop rows and a left join can add NULLs,
            // so a contiguous-range claim never survives.
            f.metadata.dense = Knowledge::Unknown;
            if kind == JoinKind::Left {
                f.metadata.has_nulls = Knowledge::Unknown;
            }
            fields.push(f);
        }
        Join {
            outer,
            inner_cols,
            inner_nulls,
            outer_key,
            kind,
            lookup,
            schema: Schema::new(fields),
            choice,
        }
    }

    #[inline]
    fn probe(&self, key: i64) -> Option<usize> {
        match &self.lookup {
            Lookup::Fetch { base, len } => {
                let row = key.wrapping_sub(*base);
                (row >= 0 && row < *len).then_some(row as usize)
            }
            Lookup::Hash(map) => map.get(&key).map(|&r| r as usize),
        }
    }
}

impl Operator for Join {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        loop {
            let mut block = self.outer.next_block()?;
            let nouter = block.columns.len();
            let mut matched = vec![true; block.len];
            let mut inner_out: Vec<Vec<i64>> =
                vec![Vec::with_capacity(block.len); self.inner_cols.len()];
            for (r, m) in matched.iter_mut().enumerate() {
                match self.probe(block.columns[self.outer_key][r]) {
                    Some(row) => {
                        for (c, col) in self.inner_cols.iter().enumerate() {
                            inner_out[c].push(col[row]);
                        }
                    }
                    None => match self.kind {
                        JoinKind::Inner => {
                            *m = false;
                            for (c, out) in inner_out.iter_mut().enumerate() {
                                out.push(self.inner_nulls[c]); // dropped below
                            }
                        }
                        JoinKind::Left => {
                            for (c, out) in inner_out.iter_mut().enumerate() {
                                out.push(self.inner_nulls[c]);
                            }
                        }
                    },
                }
            }
            block.columns.extend(inner_out);
            debug_assert_eq!(block.columns.len(), nouter + self.inner_cols.len());
            if self.kind == JoinKind::Inner && matched.iter().any(|&m| !m) {
                block.filter(&matched);
            }
            if block.len > 0 {
                return Some(block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TableScan;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::DataType;

    fn inner_table(dense: bool) -> (Arc<Table>, Schema) {
        let mut k = ColumnBuilder::new("k", DataType::Integer, EncodingPolicy::default());
        let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
        for i in 0..100i64 {
            k.append_i64(if dense { 10 + i } else { i * 3 });
            v.append_i64(i * 100);
        }
        let t = Arc::new(Table::new(
            "inner",
            vec![k.finish().column, v.finish().column],
        ));
        let scan = TableScan::new(t.clone());
        let schema = scan.schema().clone();
        (t, schema)
    }

    fn outer_scan(keys: &[i64]) -> BoxOp {
        let mut k = ColumnBuilder::new("ok", DataType::Integer, EncodingPolicy::default());
        for &x in keys {
            k.append_i64(x);
        }
        Box::new(TableScan::new(Arc::new(Table::new(
            "outer",
            vec![k.finish().column],
        ))))
    }

    #[test]
    fn fetch_join_chosen_for_dense_inner() {
        let (t, schema) = inner_table(true);
        let j = Join::new(
            outer_scan(&[10, 50, 109]),
            &t,
            &schema,
            0,
            0,
            &[1],
            JoinKind::Inner,
        );
        assert!(matches!(j.choice, JoinChoice::Fetch { base: 10 }));
        let blocks = crate::drain(Box::new(j));
        let v: Vec<i64> = blocks.iter().flat_map(|b| b.columns[1].clone()).collect();
        assert_eq!(v, vec![0, 4000, 9900]);
    }

    #[test]
    fn hash_join_for_sparse_inner() {
        let (t, schema) = inner_table(false);
        let j = Join::new(
            outer_scan(&[0, 3, 297]),
            &t,
            &schema,
            0,
            0,
            &[1],
            JoinKind::Inner,
        );
        assert!(matches!(j.choice, JoinChoice::Hash));
        let blocks = crate::drain(Box::new(j));
        let v: Vec<i64> = blocks.iter().flat_map(|b| b.columns[1].clone()).collect();
        assert_eq!(v, vec![0, 100, 9900]);
    }

    #[test]
    fn inner_join_drops_unmatched() {
        let (t, schema) = inner_table(true);
        let j = Join::new(
            outer_scan(&[10, 9999]),
            &t,
            &schema,
            0,
            0,
            &[1],
            JoinKind::Inner,
        );
        let blocks = crate::drain(Box::new(j));
        let total: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn left_join_keeps_unmatched_as_null() {
        let (t, schema) = inner_table(true);
        let j = Join::new(
            outer_scan(&[10, 9999]),
            &t,
            &schema,
            0,
            0,
            &[1],
            JoinKind::Left,
        );
        let blocks = crate::drain(Box::new(j));
        let v: Vec<i64> = blocks.iter().flat_map(|b| b.columns[1].clone()).collect();
        assert_eq!(v[0], 0);
        assert_eq!(v[1], tde_types::sentinel::NULL_I64);
    }

    #[test]
    fn fetch_and_hash_agree() {
        let (t, schema) = inner_table(true);
        let keys: Vec<i64> = (0..500).map(|i| 10 + (i * 37) % 100).collect();
        let fetch = Join::new(outer_scan(&keys), &t, &schema, 0, 0, &[1], JoinKind::Inner);
        assert!(matches!(fetch.choice, JoinChoice::Fetch { .. }));
        // Degrade the metadata to force a hash join.
        let mut dull = schema.clone();
        dull.fields[0].metadata = tde_encodings::ColumnMetadata::unknown();
        let hash = Join::new(outer_scan(&keys), &t, &dull, 0, 0, &[1], JoinKind::Inner);
        assert!(matches!(hash.choice, JoinChoice::Hash));
        let a: Vec<i64> = crate::drain(Box::new(fetch))
            .iter()
            .flat_map(|b| b.columns[1].clone())
            .collect();
        let b: Vec<i64> = crate::drain(Box::new(hash))
            .iter()
            .flat_map(|b| b.columns[1].clone())
            .collect();
        assert_eq!(a, b);
    }
}

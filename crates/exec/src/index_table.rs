//! IndexTable: expose a run-length encoded column to the optimizer
//! (paper §4.2.1).
//!
//! Three columns — *value*, *count* and *start* — where value and count
//! come straight from the run pairs and start is the running total of the
//! counts. Joining it back against the main table is a *rank join*:
//!
//! ```text
//! Index.start <= Outer.rank < Index.start + Index.count
//! ```
//!
//! Because the inner side is an ordinary table, single-column predicates
//! and computations push down onto the *compressed* representation:
//! filtering 5 % of the values touches ~5 runs, not 5 % of the rows.

use crate::block::Schema;
use crate::scan::TableScan;
use crate::Operator;
use std::sync::Arc;
use tde_storage::{Column, ColumnBuilder, EncodingPolicy, Table};
use tde_types::DataType;

/// Build the IndexTable of a run-length encoded column.
pub fn index_table(column: &Column, name: &str) -> (Arc<Table>, Schema) {
    let runs = column
        .data
        .rle_runs()
        .expect("index_table requires a run-length encoded column");
    let mut value = ColumnBuilder::new("value", column.dtype, EncodingPolicy::default());
    let mut count = ColumnBuilder::new("count", DataType::Integer, EncodingPolicy::default());
    let mut start = ColumnBuilder::new("start", DataType::Integer, EncodingPolicy::default());
    let mut at = 0i64;
    for (v, c) in runs {
        value.append_i64(v);
        count.append_i64(c as i64);
        start.append_i64(at);
        at += c as i64;
    }
    let table = Arc::new(Table::new(
        name,
        vec![
            value.finish().column,
            count.finish().column,
            start.finish().column,
        ],
    ));
    let scan = TableScan::new(table.clone());
    let schema = scan.schema().clone();
    (table, schema)
}

/// Roll up an index table through an order-preserving calculation on the
/// value column (paper §8): the computed result is aggregated with
/// `MIN(start)` and `SUM(count)` per rolled-up value, converting an index
/// on raw dates into one on, say, month starts.
pub fn rollup_index(
    index: &Arc<Table>,
    rollup: impl Fn(i64) -> i64,
    name: &str,
) -> (Arc<Table>, Schema) {
    let values = index.columns[0].data.decode_all();
    let counts = index.columns[1].data.decode_all();
    let starts = index.columns[2].data.decode_all();
    let mut value = ColumnBuilder::new("value", index.columns[0].dtype, EncodingPolicy::default());
    let mut count = ColumnBuilder::new("count", DataType::Integer, EncodingPolicy::default());
    let mut start = ColumnBuilder::new("start", DataType::Integer, EncodingPolicy::default());
    let mut current: Option<(i64, i64, i64)> = None; // (rolled, count, min start)
    for ((&v, &c), &s) in values.iter().zip(&counts).zip(&starts) {
        let r = rollup(v);
        match &mut current {
            Some((cur, cc, cs)) if *cur == r => {
                *cc += c;
                *cs = (*cs).min(s);
            }
            _ => {
                if let Some((cur, cc, cs)) = current.take() {
                    value.append_i64(cur);
                    count.append_i64(cc);
                    start.append_i64(cs);
                }
                current = Some((r, c, s));
            }
        }
    }
    if let Some((cur, cc, cs)) = current {
        value.append_i64(cur);
        count.append_i64(cc);
        start.append_i64(cs);
    }
    let table = Arc::new(Table::new(
        name,
        vec![
            value.finish().column,
            count.finish().column,
            start.finish().column,
        ],
    ));
    let scan = TableScan::new(table.clone());
    let schema = scan.schema().clone();
    (table, schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::{EncodedStream, BLOCK_SIZE};
    use tde_types::datetime::{days_from_ymd, trunc_to_month};
    use tde_types::Width;

    fn rle_column(runs: &[(i64, u64)]) -> Column {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W4);
        let mut data = Vec::new();
        for &(v, c) in runs {
            data.extend(std::iter::repeat_n(v, c as usize));
        }
        for chunk in data.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        Column::scalar("v", DataType::Integer, s)
    }

    #[test]
    fn builds_value_count_start() {
        let col = rle_column(&[(10, 500), (20, 300), (10, 200)]);
        let (t, _) = index_table(&col, "idx");
        assert_eq!(t.row_count(), 3);
        let vals = t.columns[0].data.decode_all();
        let counts = t.columns[1].data.decode_all();
        let starts = t.columns[2].data.decode_all();
        assert_eq!(vals, vec![10, 20, 10]);
        assert_eq!(counts, vec![500, 300, 200]);
        assert_eq!(starts, vec![0, 500, 800]);
    }

    #[test]
    fn start_column_metadata_is_sorted() {
        let col = rle_column(&[(1, 100), (2, 100), (3, 100)]);
        let (t, _) = index_table(&col, "idx");
        assert!(t.columns[2].metadata.sorted_asc.is_true());
    }

    #[test]
    fn rollup_to_month() {
        // Daily runs across two months roll up to two index rows.
        let jan1 = days_from_ymd(1995, 1, 1);
        let runs: Vec<(i64, u64)> = (0..40).map(|i| (jan1 + i, 10)).collect();
        let col = rle_column(&runs);
        let (idx, _) = index_table(&col, "daily");
        let (rolled, _) = rollup_index(&idx, trunc_to_month, "monthly");
        assert_eq!(rolled.row_count(), 2);
        assert_eq!(
            rolled.columns[0].data.decode_all(),
            vec![days_from_ymd(1995, 1, 1), days_from_ymd(1995, 2, 1)]
        );
        assert_eq!(rolled.columns[1].data.decode_all(), vec![310, 90]);
        assert_eq!(rolled.columns[2].data.decode_all(), vec![0, 310]);
    }
}

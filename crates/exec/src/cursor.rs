//! Column readers: sequential and ranged access over encoded streams.
//!
//! Sequential scans use a per-encoding cursor so run-length streams decode
//! in time linear in their runs. Ranged access (IndexedScan translating
//! (start, count) pairs into reads, §4.2.1) binary-searches a prefix-sum
//! index over the runs for RLE streams and falls back to block decoding
//! for the bit-packed encodings.

use tde_encodings::rle;
use tde_encodings::{Algorithm, EncodedStream};

/// Sequential block-at-a-time reader state over one stream. The stream is
/// passed to each call (not borrowed), so operators can hold the state
/// alongside an owned table without self-references.
pub struct StreamCursor {
    next_block: usize,
    rle: Option<rle::Cursor>,
    remaining: u64,
}

impl StreamCursor {
    /// A cursor at the start of the stream.
    pub fn new(stream: &EncodedStream) -> StreamCursor {
        let rle = (stream.algorithm() == Algorithm::RunLength).then(rle::Cursor::new);
        StreamCursor {
            next_block: 0,
            rle,
            remaining: stream.len(),
        }
    }

    /// Decode up to `n` values of `stream` (which must be the stream the
    /// cursor was created for), appending to `out`; returns the count
    /// (0 at end of stream). `n` must equal the stream block size except
    /// possibly at the end of the stream.
    pub fn next(&mut self, stream: &EncodedStream, n: usize, out: &mut Vec<i64>) -> usize {
        if self.remaining == 0 {
            return 0;
        }
        let take = (self.remaining as usize).min(n);
        match &mut self.rle {
            Some(cursor) => {
                let h = stream.header();
                cursor.take(stream.as_bytes(), &h, take, out);
            }
            None => {
                let before = out.len();
                stream.decode_block(self.next_block, out);
                out.truncate(before + take);
                self.next_block += 1;
            }
        }
        self.remaining -= take as u64;
        take
    }

    /// Advance past up to `n` values without decoding them — a kernel
    /// decided the whole block cannot match. Returns the count skipped
    /// (0 at end of stream). Like [`StreamCursor::next`], `n` must equal
    /// the stream block size except possibly at the end of the stream.
    pub fn skip(&mut self, stream: &EncodedStream, n: usize) -> usize {
        if self.remaining == 0 {
            return 0;
        }
        let take = (self.remaining as usize).min(n);
        match &mut self.rle {
            Some(cursor) => {
                let h = stream.header();
                let target = cursor.position() + take as u64;
                cursor.skip_to(stream.as_bytes(), &h, target);
            }
            None => self.next_block += 1,
        }
        self.remaining -= take as u64;
        take
    }

    /// Position the cursor `blocks` whole decompression blocks into the
    /// stream in one step, without decoding — used by ranged (morsel)
    /// scans to start mid-stream. Must be called before any read.
    pub fn skip_blocks(&mut self, stream: &EncodedStream, blocks: usize) {
        if blocks == 0 {
            return;
        }
        let take = (self.remaining as usize).min(blocks * stream.header().block_size);
        match &mut self.rle {
            Some(cursor) => {
                let h = stream.header();
                let target = cursor.position() + take as u64;
                cursor.skip_to(stream.as_bytes(), &h, target);
            }
            None => self.next_block += blocks,
        }
        self.remaining -= take as u64;
    }
}

/// Random-range reader state over one stream, used by IndexedScan. Like
/// [`StreamCursor`], the stream is passed per call rather than borrowed,
/// so operators can cache readers alongside the owned table.
pub struct RangeReader {
    /// For RLE: (prefix_start, value) per run, so a range read is a binary
    /// search plus a sequential sweep — the index structure standing in
    /// for the stream's missing random access (§4.2.1).
    rle_index: Option<(Vec<u64>, Vec<i64>)>,
    /// Scratch for decoded blocks of bit-packed streams.
    scratch: Vec<i64>,
    scratch_block: Option<usize>,
}

impl RangeReader {
    /// Build a reader (O(runs) setup for RLE streams, O(1) otherwise).
    pub fn new(stream: &EncodedStream) -> RangeReader {
        let rle_index = (stream.algorithm() == Algorithm::RunLength).then(|| {
            let runs = stream.rle_run_iter().expect("RLE stream");
            let mut starts = Vec::with_capacity(runs.len());
            let mut values = Vec::with_capacity(runs.len());
            let mut at = 0u64;
            for (v, c) in runs {
                starts.push(at);
                values.push(v);
                at += c;
            }
            (starts, values)
        });
        RangeReader {
            rle_index,
            scratch: Vec::new(),
            scratch_block: None,
        }
    }

    /// Append the values of rows `[start, start + count)` of `stream`
    /// (which must be the stream the reader was created for) to `out`.
    pub fn read_range(
        &mut self,
        stream: &EncodedStream,
        start: u64,
        count: u64,
        out: &mut Vec<i64>,
    ) {
        match &self.rle_index {
            Some((starts, values)) => {
                // Find the run containing `start`.
                let mut run = match starts.binary_search(&start) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                let mut remaining = count;
                let mut at = start;
                while remaining > 0 {
                    let run_end = starts.get(run + 1).copied().unwrap_or(stream.len());
                    let take = remaining.min(run_end - at);
                    out.extend(std::iter::repeat_n(values[run], take as usize));
                    remaining -= take;
                    at += take;
                    run += 1;
                }
            }
            None => {
                let bs = stream.header().block_size as u64;
                let mut at = start;
                let end = start + count;
                while at < end {
                    let block = (at / bs) as usize;
                    if self.scratch_block != Some(block) {
                        self.scratch.clear();
                        stream.decode_block(block, &mut self.scratch);
                        self.scratch_block = Some(block);
                    }
                    let lo = (at % bs) as usize;
                    let hi = self.scratch.len().min(lo + (end - at) as usize);
                    out.extend_from_slice(&self.scratch[lo..hi]);
                    at += (hi - lo) as u64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::dynamic::encode_all;
    use tde_encodings::BLOCK_SIZE;
    use tde_types::Width;

    fn rle_stream(data: &[i64]) -> EncodedStream {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for c in data.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        s
    }

    #[test]
    fn sequential_cursor_matches_decode_all() {
        let data: Vec<i64> = (0..5000).map(|i| i / 700).collect();
        for stream in [rle_stream(&data), encode_all(&data, Width::W8, true).stream] {
            let mut cur = StreamCursor::new(&stream);
            let mut out = Vec::new();
            while cur.next(&stream, BLOCK_SIZE, &mut out) > 0 {}
            assert_eq!(out, data, "algorithm {}", stream.algorithm());
        }
    }

    #[test]
    fn skip_blocks_positions_like_a_sequential_walk() {
        let data: Vec<i64> = (0..5000).map(|i| i / 700).collect();
        for stream in [rle_stream(&data), encode_all(&data, Width::W8, true).stream] {
            let nblocks = data.len().div_ceil(BLOCK_SIZE);
            for start in 0..=nblocks {
                let mut cur = StreamCursor::new(&stream);
                cur.skip_blocks(&stream, start);
                let mut out = Vec::new();
                while cur.next(&stream, BLOCK_SIZE, &mut out) > 0 {}
                assert_eq!(
                    out,
                    data[(start * BLOCK_SIZE).min(data.len())..],
                    "algorithm {} start {start}",
                    stream.algorithm()
                );
            }
        }
    }

    #[test]
    fn range_reader_on_rle() {
        let mut data = Vec::new();
        for v in 0..30i64 {
            data.extend(std::iter::repeat_n(v, 150));
        }
        let stream = rle_stream(&data);
        let mut r = RangeReader::new(&stream);
        let mut out = Vec::new();
        r.read_range(&stream, 100, 120, &mut out); // straddles the 150 boundary
        assert_eq!(out, data[100..220].to_vec());
        out.clear();
        r.read_range(&stream, 0, 1, &mut out);
        assert_eq!(out, vec![0]);
        out.clear();
        r.read_range(&stream, data.len() as u64 - 5, 5, &mut out);
        assert_eq!(out, data[data.len() - 5..].to_vec());
    }

    #[test]
    fn range_reader_on_bitpacked() {
        let data: Vec<i64> = (0..4000).map(|i| i % 997).collect();
        let stream = encode_all(&data, Width::W8, true).stream;
        let mut r = RangeReader::new(&stream);
        let mut out = Vec::new();
        r.read_range(&stream, 1000, 1100, &mut out); // crosses a block boundary
        assert_eq!(out, data[1000..2100].to_vec());
    }

    #[test]
    fn backwards_ranges_are_allowed_via_index() {
        // Ordered retrieval (§4.2.2) reads ranges out of order; the prefix
        // index makes that possible on RLE streams.
        let mut data = Vec::new();
        for v in [5i64, 2, 9, 2] {
            data.extend(std::iter::repeat_n(v, 100));
        }
        let stream = rle_stream(&data);
        let mut r = RangeReader::new(&stream);
        let mut out = Vec::new();
        r.read_range(&stream, 300, 50, &mut out);
        r.read_range(&stream, 0, 50, &mut out); // backwards
        assert_eq!(out[..50], data[300..350]);
        assert_eq!(out[50..], data[0..50]);
    }
}

//! Sort: a stop-and-go operator materializing and ordering its input.
//!
//! Keys compare in the stored `i64` domain: exact for scalars, and for
//! string tokens exactly when the heap is sorted — one more reason the
//! §3.4.3 heap sorting matters. `Real` keys compare as doubles.

use crate::block::{Block, Schema};
use crate::{BoxOp, Operator, BLOCK_ROWS};
use tde_types::DataType;

/// Sort direction per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// Sorts the whole input by the given key columns.
pub struct Sort {
    input: Option<BoxOp>,
    keys: Vec<(usize, SortOrder)>,
    schema: Schema,
    output: Vec<Block>,
    next: usize,
}

impl Sort {
    /// Sort `input` by `keys` (column index, order), most significant
    /// first.
    pub fn new(input: BoxOp, keys: Vec<(usize, SortOrder)>) -> Sort {
        let mut schema = input.schema().clone();
        // Sorting permutes rows, so order-dependent claims inherited from
        // the input (sorted_asc, dense) no longer describe the output —
        // value-set claims (unique, min/max, nulls) survive untouched.
        for f in &mut schema.fields {
            f.metadata.sorted_asc = tde_encodings::metadata::Knowledge::Unknown;
            f.metadata.dense = tde_encodings::metadata::Knowledge::Unknown;
        }
        // Sorting by the leading key makes the output sorted on it — the
        // downstream ordered aggregate relies on this metadata.
        if let Some(&(first, SortOrder::Asc)) = keys.first() {
            schema.fields[first].metadata.sorted_asc = tde_encodings::metadata::Knowledge::True;
        }
        Sort {
            input: Some(input),
            keys,
            schema,
            output: Vec::new(),
            next: 0,
        }
    }

    fn run(&mut self) {
        let mut input = self.input.take().expect("sort already ran");
        let in_schema = input.schema().clone();
        let blocks = {
            let mut v = Vec::new();
            while let Some(b) = input.next_block() {
                v.push(b);
            }
            v
        };
        // Flatten to column-major.
        let ncols = in_schema.len();
        let total: usize = blocks.iter().map(|b| b.len).sum();
        let mut cols: Vec<Vec<i64>> = vec![Vec::with_capacity(total); ncols];
        for b in &blocks {
            for (c, col) in b.columns.iter().enumerate() {
                cols[c].extend_from_slice(&col[..b.len]);
            }
        }
        let mut order: Vec<u32> = (0..total as u32).collect();
        let keys = self.keys.clone();
        let reals: Vec<bool> = in_schema
            .fields
            .iter()
            .map(|f| f.dtype == DataType::Real && f.repr.is_scalar())
            .collect();
        order.sort_unstable_by(|&a, &b| {
            for &(c, dir) in &keys {
                let (x, y) = (cols[c][a as usize], cols[c][b as usize]);
                let o = if reals[c] {
                    f64::from_bits(x as u64)
                        .partial_cmp(&f64::from_bits(y as u64))
                        .unwrap_or(std::cmp::Ordering::Equal)
                } else {
                    x.cmp(&y)
                };
                let o = match dir {
                    SortOrder::Asc => o,
                    SortOrder::Desc => o.reverse(),
                };
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        // Emit permuted blocks.
        let mut at = 0;
        while at < total {
            let take = BLOCK_ROWS.min(total - at);
            let columns: Vec<Vec<i64>> = (0..ncols)
                .map(|c| {
                    order[at..at + take]
                        .iter()
                        .map(|&r| cols[c][r as usize])
                        .collect()
                })
                .collect();
            self.output.push(Block { columns, len: take });
            at += take;
        }
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next_block(&mut self) -> Option<Block> {
        if self.input.is_some() {
            self.run();
        }
        let b = self.output.get(self.next).cloned();
        self.next += 1;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::TableScan;
    use std::sync::Arc;
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};

    fn table() -> Arc<Table> {
        let mut a = ColumnBuilder::new("a", DataType::Integer, EncodingPolicy::default());
        let mut b = ColumnBuilder::new("b", DataType::Integer, EncodingPolicy::default());
        for i in 0..5000i64 {
            a.append_i64((i * 7919) % 100);
            b.append_i64(i);
        }
        Arc::new(Table::new("t", vec![a.finish().column, b.finish().column]))
    }

    #[test]
    fn sorts_ascending_and_descending() {
        let s = Sort::new(Box::new(TableScan::new(table())), vec![(0, SortOrder::Asc)]);
        let blocks = crate::drain(Box::new(s));
        let all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        assert_eq!(all.len(), 5000);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));

        let s = Sort::new(
            Box::new(TableScan::new(table())),
            vec![(0, SortOrder::Desc)],
        );
        let blocks = crate::drain(Box::new(s));
        let all: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        assert!(all.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn secondary_key_breaks_ties() {
        let s = Sort::new(
            Box::new(TableScan::new(table())),
            vec![(0, SortOrder::Asc), (1, SortOrder::Desc)],
        );
        let blocks = crate::drain(Box::new(s));
        let a: Vec<i64> = blocks.iter().flat_map(|b| b.columns[0].clone()).collect();
        let b: Vec<i64> = blocks.iter().flat_map(|b| b.columns[1].clone()).collect();
        for w in 0..a.len() - 1 {
            if a[w] == a[w + 1] {
                assert!(b[w] >= b[w + 1]);
            }
        }
    }

    #[test]
    fn sort_asserts_sorted_metadata() {
        let s = Sort::new(Box::new(TableScan::new(table())), vec![(0, SortOrder::Asc)]);
        assert!(s.schema().fields[0].metadata.sorted_asc.is_true());
    }

    #[test]
    fn sort_invalidates_other_columns_order_claims() {
        // Column b scans sorted ascending (0..5000) and carries the claim;
        // sorting by a permutes it, so the stale claim must not survive —
        // found by tde-fuzz seed 1 (ordered retrieval over a stale claim).
        let scan = TableScan::new(table());
        assert!(scan.schema().fields[1].metadata.sorted_asc.is_true());
        let s = Sort::new(Box::new(scan), vec![(0, SortOrder::Asc)]);
        assert!(!s.schema().fields[1].metadata.sorted_asc.is_true());
        let blocks = crate::drain(Box::new(s));
        let b: Vec<i64> = blocks.iter().flat_map(|b| b.columns[1].clone()).collect();
        assert!(b.windows(2).any(|w| w[1] < w[0]));
    }
}

//! The tactical (run-time) optimizer (paper §2.3.1, §4.1.2).
//!
//! Strategic optimization fixes the plan shape before execution; tactical
//! decisions are delayed until run time, when the actual data — and the
//! metadata FlowTable extracted from its encodings — is in hand. The
//! choosers here implement the paper's three decision points:
//!
//! * grouping/join hash algorithm by key width (§2.3.4),
//! * fetch join vs hash join from dense/unique key metadata (§2.3.5),
//! * ordered vs hash aggregation from sortedness (§4.2.2).

use crate::block::Field;
use crate::hash::{HashStrategy, KeyPacking};
use tde_encodings::ColumnMetadata;

/// The range a key column is known to span, from its metadata.
fn known_range(md: &ColumnMetadata) -> Option<(i64, i64)> {
    Some((md.min?, md.max?))
}

/// Choose the hash strategy (and packing) for a set of key columns.
pub fn choose_hash_strategy(keys: &[&Field]) -> (HashStrategy, Option<KeyPacking>) {
    let ranges: Vec<Option<(i64, i64)>> = keys.iter().map(|f| known_range(&f.metadata)).collect();
    let chosen = match KeyPacking::plan(&ranges) {
        Some(p) if p.total_bits <= 16 => (HashStrategy::Direct64K, Some(p)),
        Some(p) => (HashStrategy::Perfect, Some(p)),
        None => (HashStrategy::Collision, None),
    };
    tde_obs::metrics::decision(
        "hash-strategy",
        match chosen.0 {
            HashStrategy::Direct64K => "Direct64K",
            HashStrategy::Perfect => "Perfect",
            HashStrategy::Collision => "Collision",
        },
    );
    tde_obs::emit(|| {
        let names: Vec<&str> = keys.iter().map(|f| f.name.as_str()).collect();
        let reason = match &chosen.1 {
            Some(p) if p.total_bits <= 16 => format!(
                "keys [{}] pack into {} bits <= 16: direct index into a 64K table",
                names.join(", "),
                p.total_bits
            ),
            Some(p) => format!(
                "keys [{}] pack into {} bits: collision-free open addressing",
                names.join(", "),
                p.total_bits
            ),
            None => format!(
                "keys [{}] have unknown or >64-bit combined range: classic collision hashing",
                names.join(", ")
            ),
        };
        tde_obs::Event::Decision {
            point: "hash-strategy",
            choice: format!("{:?}", chosen.0),
            reason,
        }
    });
    chosen
}

/// How a many-to-one join should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinChoice {
    /// The inner row id is an affine transformation of the key value —
    /// no lookup table at all (paper §2.3.5).
    Fetch {
        /// Key value of inner row 0.
        base: i64,
    },
    /// Hash the inner keys.
    Hash,
}

/// Choose the join implementation from the inner key column's metadata:
/// dense + unique + sorted means row id = key − min.
pub fn choose_join(inner_key: &Field) -> JoinChoice {
    let md = &inner_key.metadata;
    let choice = if md.dense.is_true() && md.unique.is_true() && md.sorted_asc.is_true() {
        md.min.map(|min| JoinChoice::Fetch { base: min })
    } else {
        None
    }
    .unwrap_or(JoinChoice::Hash);
    // The metric label is the strategy name alone — `Fetch { base }`
    // would be one label value per table.
    tde_obs::metrics::decision(
        "join",
        match choice {
            JoinChoice::Fetch { .. } => "Fetch",
            JoinChoice::Hash => "Hash",
        },
    );
    tde_obs::emit(|| {
        let (choice_str, reason) = match choice {
            JoinChoice::Fetch { base } => (
                format!("Fetch {{ base: {base} }}"),
                format!(
                    "inner key '{}' is dense+unique+sorted: row id = key - {base}, no lookup table",
                    inner_key.name
                ),
            ),
            JoinChoice::Hash => (
                "Hash".to_string(),
                format!(
                    "inner key '{}' lacks dense/unique/sorted metadata \
                     (dense={:?} unique={:?} sorted={:?}): hash the inner keys",
                    inner_key.name, md.dense, md.unique, md.sorted_asc
                ),
            ),
        };
        tde_obs::Event::Decision {
            point: "join",
            choice: choice_str,
            reason,
        }
    });
    choice
}

/// Whether ordered (sandwiched) aggregation applies: every group key must
/// be known sorted.
pub fn can_aggregate_ordered(keys: &[&Field]) -> bool {
    let ordered = !keys.is_empty() && keys.iter().all(|f| f.metadata.sorted_asc.is_true());
    tde_obs::metrics::decision("aggregation", if ordered { "Ordered" } else { "Hash" });
    tde_obs::emit(|| {
        let names: Vec<&str> = keys.iter().map(|f| f.name.as_str()).collect();
        tde_obs::Event::Decision {
            point: "aggregation",
            choice: if ordered {
                "Ordered".into()
            } else {
                "Hash".into()
            },
            reason: if ordered {
                format!(
                    "group keys [{}] are all known sorted: sandwiched aggregation",
                    names.join(", ")
                )
            } else {
                format!(
                    "group keys [{}] are not all known sorted: hash aggregation",
                    names.join(", ")
                )
            },
        }
    });
    ordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::metadata::Knowledge;
    use tde_types::DataType;

    fn field_with(min: i64, max: i64) -> Field {
        let mut f = Field::scalar("k", DataType::Integer);
        f.metadata.min = Some(min);
        f.metadata.max = Some(max);
        f
    }

    #[test]
    fn strategy_ladder() {
        // 1-byte key: direct.
        let f = field_with(0, 200);
        let (s, _) = choose_hash_strategy(&[&f]);
        assert_eq!(s, HashStrategy::Direct64K);
        // Two 1-byte keys: still 16 bits — direct.
        let (s, _) = choose_hash_strategy(&[&f, &f]);
        assert_eq!(s, HashStrategy::Direct64K);
        // 4-byte key: perfect.
        let g = field_with(0, 1 << 30);
        let (s, _) = choose_hash_strategy(&[&g]);
        assert_eq!(s, HashStrategy::Perfect);
        // Unknown range: collision.
        let u = Field::scalar("u", DataType::Integer);
        let (s, p) = choose_hash_strategy(&[&u]);
        assert_eq!(s, HashStrategy::Collision);
        assert!(p.is_none());
        // Two wide keys exceed 64 bits: collision.
        let w = field_with(i64::MIN / 2 + 1, i64::MAX / 2);
        let (s, _) = choose_hash_strategy(&[&w, &w]);
        assert_eq!(s, HashStrategy::Collision);
    }

    #[test]
    fn fetch_join_requires_dense_unique_sorted() {
        let mut f = field_with(100, 199);
        assert_eq!(choose_join(&f), JoinChoice::Hash);
        f.metadata.dense = Knowledge::True;
        f.metadata.unique = Knowledge::True;
        f.metadata.sorted_asc = Knowledge::True;
        assert_eq!(choose_join(&f), JoinChoice::Fetch { base: 100 });
    }

    #[test]
    fn ordered_aggregation_gate() {
        let mut f = field_with(0, 10);
        assert!(!can_aggregate_ordered(&[&f]));
        f.metadata.sorted_asc = Knowledge::True;
        assert!(can_aggregate_ordered(&[&f]));
        assert!(!can_aggregate_ordered(&[]));
    }

    // Decision-event tests. Field names are unique per test and the
    // assertions are contains-style: tests in this binary run
    // concurrently, so an installed trace can pick up events from
    // whatever else is executing at the same time.

    /// The decisions recorded while `f` runs, as (point, choice, reason).
    fn decisions_during(f: impl FnOnce()) -> Vec<(&'static str, String, String)> {
        let trace = tde_obs::Trace::new();
        {
            let _guard = tde_obs::install(&trace);
            f();
        }
        trace
            .events()
            .into_iter()
            .filter_map(|e| match e {
                tde_obs::Event::Decision {
                    point,
                    choice,
                    reason,
                } => Some((point, choice, reason)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn hash_strategy_ladder_is_traced() {
        let mut narrow = field_with(0, 200);
        narrow.name = "tt_narrow".into();
        let mut wide = field_with(0, 1 << 30);
        wide.name = "tt_wide".into();
        let mut unknown = Field::scalar("tt_unknown", DataType::Integer);
        unknown.metadata.min = None;

        let events = decisions_during(|| {
            choose_hash_strategy(&[&narrow]);
            choose_hash_strategy(&[&wide]);
            choose_hash_strategy(&[&unknown]);
        });
        let find = |name: &str| {
            events
                .iter()
                .find(|(p, _, r)| *p == "hash-strategy" && r.contains(name))
                .unwrap_or_else(|| panic!("no hash-strategy event for {name} in {events:?}"))
        };
        assert_eq!(find("tt_narrow").1, "Direct64K");
        assert!(find("tt_narrow").2.contains("<= 16"));
        assert_eq!(find("tt_wide").1, "Perfect");
        assert_eq!(find("tt_unknown").1, "Collision");
        assert!(find("tt_unknown").2.contains("unknown"));
    }

    #[test]
    fn join_choice_is_traced_with_metadata_reason() {
        let mut pk = field_with(100, 199);
        pk.name = "tt_pk".into();
        pk.metadata.dense = Knowledge::True;
        pk.metadata.unique = Knowledge::True;
        pk.metadata.sorted_asc = Knowledge::True;
        let messy = Field::scalar("tt_messy", DataType::Integer);

        let events = decisions_during(|| {
            choose_join(&pk);
            choose_join(&messy);
        });
        let fetch = events
            .iter()
            .find(|(p, _, r)| *p == "join" && r.contains("tt_pk"))
            .expect("fetch decision");
        assert_eq!(fetch.1, "Fetch { base: 100 }");
        assert!(fetch.2.contains("dense+unique+sorted"));
        let hash = events
            .iter()
            .find(|(p, _, r)| *p == "join" && r.contains("tt_messy"))
            .expect("hash decision");
        assert_eq!(hash.1, "Hash");
        assert!(hash.2.contains("lacks"));
    }

    #[test]
    fn aggregation_flavor_is_traced() {
        let mut sorted = field_with(0, 10);
        sorted.name = "tt_sorted".into();
        sorted.metadata.sorted_asc = Knowledge::True;
        let mut unsorted = field_with(0, 10);
        unsorted.name = "tt_unsorted".into();

        let events = decisions_during(|| {
            can_aggregate_ordered(&[&sorted]);
            can_aggregate_ordered(&[&unsorted]);
        });
        assert!(events
            .iter()
            .any(|(p, c, r)| *p == "aggregation" && c == "Ordered" && r.contains("tt_sorted")));
        assert!(events
            .iter()
            .any(|(p, c, r)| *p == "aggregation" && c == "Hash" && r.contains("tt_unsorted")));
    }
}

//! The tactical (run-time) optimizer (paper §2.3.1, §4.1.2).
//!
//! Strategic optimization fixes the plan shape before execution; tactical
//! decisions are delayed until run time, when the actual data — and the
//! metadata FlowTable extracted from its encodings — is in hand. The
//! choosers here implement the paper's three decision points:
//!
//! * grouping/join hash algorithm by key width (§2.3.4),
//! * fetch join vs hash join from dense/unique key metadata (§2.3.5),
//! * ordered vs hash aggregation from sortedness (§4.2.2).

use crate::block::Field;
use crate::hash::{HashStrategy, KeyPacking};
use tde_encodings::ColumnMetadata;

/// The range a key column is known to span, from its metadata.
fn known_range(md: &ColumnMetadata) -> Option<(i64, i64)> {
    Some((md.min?, md.max?))
}

/// Choose the hash strategy (and packing) for a set of key columns.
pub fn choose_hash_strategy(keys: &[&Field]) -> (HashStrategy, Option<KeyPacking>) {
    let ranges: Vec<Option<(i64, i64)>> =
        keys.iter().map(|f| known_range(&f.metadata)).collect();
    match KeyPacking::plan(&ranges) {
        Some(p) if p.total_bits <= 16 => (HashStrategy::Direct64K, Some(p)),
        Some(p) => (HashStrategy::Perfect, Some(p)),
        None => (HashStrategy::Collision, None),
    }
}

/// How a many-to-one join should be executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinChoice {
    /// The inner row id is an affine transformation of the key value —
    /// no lookup table at all (paper §2.3.5).
    Fetch {
        /// Key value of inner row 0.
        base: i64,
    },
    /// Hash the inner keys.
    Hash,
}

/// Choose the join implementation from the inner key column's metadata:
/// dense + unique + sorted means row id = key − min.
pub fn choose_join(inner_key: &Field) -> JoinChoice {
    let md = &inner_key.metadata;
    if md.dense.is_true() && md.unique.is_true() && md.sorted_asc.is_true() {
        if let Some(min) = md.min {
            return JoinChoice::Fetch { base: min };
        }
    }
    JoinChoice::Hash
}

/// Whether ordered (sandwiched) aggregation applies: every group key must
/// be known sorted.
pub fn can_aggregate_ordered(keys: &[&Field]) -> bool {
    !keys.is_empty() && keys.iter().all(|f| f.metadata.sorted_asc.is_true())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_encodings::metadata::Knowledge;
    use tde_types::DataType;

    fn field_with(min: i64, max: i64) -> Field {
        let mut f = Field::scalar("k", DataType::Integer);
        f.metadata.min = Some(min);
        f.metadata.max = Some(max);
        f
    }

    #[test]
    fn strategy_ladder() {
        // 1-byte key: direct.
        let f = field_with(0, 200);
        let (s, _) = choose_hash_strategy(&[&f]);
        assert_eq!(s, HashStrategy::Direct64K);
        // Two 1-byte keys: still 16 bits — direct.
        let (s, _) = choose_hash_strategy(&[&f, &f]);
        assert_eq!(s, HashStrategy::Direct64K);
        // 4-byte key: perfect.
        let g = field_with(0, 1 << 30);
        let (s, _) = choose_hash_strategy(&[&g]);
        assert_eq!(s, HashStrategy::Perfect);
        // Unknown range: collision.
        let u = Field::scalar("u", DataType::Integer);
        let (s, p) = choose_hash_strategy(&[&u]);
        assert_eq!(s, HashStrategy::Collision);
        assert!(p.is_none());
        // Two wide keys exceed 64 bits: collision.
        let w = field_with(i64::MIN / 2 + 1, i64::MAX / 2);
        let (s, _) = choose_hash_strategy(&[&w, &w]);
        assert_eq!(s, HashStrategy::Collision);
    }

    #[test]
    fn fetch_join_requires_dense_unique_sorted() {
        let mut f = field_with(100, 199);
        assert_eq!(choose_join(&f), JoinChoice::Hash);
        f.metadata.dense = Knowledge::True;
        f.metadata.unique = Knowledge::True;
        f.metadata.sorted_asc = Knowledge::True;
        assert_eq!(choose_join(&f), JoinChoice::Fetch { base: 100 });
    }

    #[test]
    fn ordered_aggregation_gate() {
        let mut f = field_with(0, 10);
        assert!(!can_aggregate_ordered(&[&f]));
        f.metadata.sorted_asc = Knowledge::True;
        assert!(can_aggregate_ordered(&[&f]));
        assert!(!can_aggregate_ordered(&[]));
    }
}

//! DictionaryTable: expose a compressed column's dictionary as a table
//! (paper §4.1.1).
//!
//! The operator has a column of the same type as the original, but the
//! column data is the set of unique tokens in heap order. For variable
//! width data (strings) that token column is the only one, sharing the
//! original column's heap; for fixed width data the table has a second
//! column holding the dictionary's scalar values. Expansion of the
//! compressed column then becomes a foreign-key join between the main
//! table and the token column — the *invisible join* — and the strategic
//! optimizer can push filters and computations on the column's values down
//! to the inner side.

use crate::block::{Field, Repr, Schema};
use crate::scan::TableScan;
use crate::Operator;
use std::sync::Arc;
use tde_encodings::metadata::Knowledge;
use tde_storage::{Column, ColumnBuilder, Compression, EncodingPolicy, Table};
use tde_types::DataType;

/// The dictionary of `column` as a table, plus its scan schema.
///
/// * Heap compression → one column `token` (type Str, sharing the heap):
///   the distinct tokens in heap order.
/// * Array compression → columns `token` (the dictionary indexes — dense,
///   unique, sorted, hence fetch-joinable) and `value` (the scalars).
pub fn dictionary_table(column: &Column, name: &str) -> (Arc<Table>, Schema) {
    match &column.compression {
        Compression::Heap { heap, sorted } => {
            let mut b = ColumnBuilder::new("token", DataType::Str, EncodingPolicy::default());
            // The column's token domain includes the reserved NULL token
            // whenever NULLs may occur. The inner side must see it: a
            // pushed-down predicate evaluates NULL-accepting shapes (NOT
            // of a comparison, IS NULL) to true on it, and dropping the
            // token here would silently drop every NULL row from the
            // expansion join regardless of the predicate.
            let has_nulls = column.metadata.has_nulls != Knowledge::False;
            let mut tokens: Vec<i64> =
                Vec::with_capacity(heap.len() as usize + usize::from(has_nulls));
            if has_nulls {
                tokens.push(tde_types::sentinel::NULL_TOKEN as i64);
            }
            tokens.extend(heap.iter().map(|(t, _)| t as i64));
            b.append_raw(&tokens);
            let mut built = b.finish();
            built.column.dtype = DataType::Str;
            built.column.compression = Compression::Heap {
                heap: heap.clone(),
                sorted: *sorted,
            };
            // Token offsets for equal-width strings are affine; either way
            // they are distinct and ascending in heap order.
            built.column.metadata.unique = Knowledge::True;
            built.column.metadata.sorted_asc = Knowledge::True; // heap order
            let table = Arc::new(Table::new(name, vec![built.column]));
            let scan = TableScan::new(table.clone());
            let schema = scan.schema().clone();
            (table, schema)
        }
        Compression::Array { dictionary, sorted } => {
            let mut tok = ColumnBuilder::new("token", DataType::Integer, EncodingPolicy::default());
            let mut val = ColumnBuilder::new("value", column.dtype, EncodingPolicy::default());
            for (i, &v) in dictionary.iter().enumerate() {
                tok.append_i64(i as i64);
                val.append_i64(v);
            }
            let tok = tok.finish().column;
            let mut val = val.finish().column;
            if *sorted {
                val.metadata.sorted_asc = Knowledge::True;
            }
            let table = Arc::new(Table::new(name, vec![tok, val]));
            let scan = TableScan::new(table.clone());
            let schema = scan.schema().clone();
            (table, schema)
        }
        Compression::None => panic!("dictionary_table on an uncompressed column"),
    }
}

/// Scan schema fields that an expansion join projects: the `value` column
/// for array compression, the `token` column (as strings) for heaps.
pub fn value_field(schema: &Schema) -> (usize, Field) {
    if let Some(i) = schema.index_of("value") {
        (i, schema.fields[i].clone())
    } else {
        let i = schema.index_of("token").expect("dictionary schema");
        let mut f = schema.fields[i].clone();
        debug_assert!(matches!(f.repr, Repr::Token(_)));
        f.name = "value".into();
        (i, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::filter::Filter;
    use crate::flow_table::{flow_table, FlowTableOptions};
    use crate::join::{Join, JoinKind};
    use crate::tactical::JoinChoice;
    use tde_storage::convert;
    use tde_types::{Value, Width};

    /// Build a dictionary-compressed date column (the §4.1.2 scenario).
    fn date_table() -> Arc<Table> {
        let days: Vec<i64> = (0..50_000).map(|i| 9000 + (i % 365)).collect();
        let mut stream = tde_encodings::EncodedStream::new_dict(Width::W8, true, 10);
        for c in days.chunks(tde_encodings::BLOCK_SIZE) {
            stream.append_block(c).unwrap();
        }
        let mut col = Column::scalar("d", DataType::Date, stream);
        convert::dict_encoding_to_compression(&mut col);
        let mut other = ColumnBuilder::new("x", DataType::Integer, EncodingPolicy::default());
        for i in 0..50_000i64 {
            other.append_i64(i % 7);
        }
        Arc::new(Table::new("facts", vec![col, other.finish().column]))
    }

    #[test]
    fn scalar_dictionary_table_shape() {
        let t = date_table();
        let (dt, schema) = dictionary_table(&t.columns[0], "d_dict");
        assert_eq!(dt.row_count(), 365);
        assert_eq!(schema.index_of("token"), Some(0));
        assert_eq!(schema.index_of("value"), Some(1));
        // The token column is dense/unique/sorted — fetch-joinable.
        let md = &dt.columns[0].metadata;
        assert!(md.dense.is_true() && md.unique.is_true() && md.sorted_asc.is_true());
    }

    #[test]
    fn invisible_join_expands_column() {
        let t = date_table();
        let (dt, dschema) = dictionary_table(&t.columns[0], "d_dict");
        let outer = Box::new(TableScan::new(t.clone()));
        let (vi, _) = value_field(&dschema);
        let j = Join::new(outer, &dt, &dschema, 0, 0, &[vi], JoinKind::Inner);
        // Expansion joins on a fresh dictionary are fetch joins.
        assert!(matches!(j.choice, JoinChoice::Fetch { .. }));
        let schema = j.schema().clone();
        let blocks = crate::drain(Box::new(j));
        let total: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(total, 50_000);
        // The expanded value matches the original column value.
        let vcol = schema.len() - 1;
        let first = &blocks[0];
        assert_eq!(
            schema.fields[vcol].value_of(first.columns[vcol][3]),
            t.columns[0].value(3)
        );
    }

    #[test]
    fn pushed_down_filter_keeps_fetch_join() {
        // Filter the dictionary to a contiguous date range, rebuild with
        // FlowTable: the dense property re-asserts and the expansion join
        // is *still* a fetch join (paper §3.4.2 / §4.1.2).
        let t = date_table();
        let (dt, _dschema) = dictionary_table(&t.columns[0], "d_dict");
        let inner = Filter::new(
            Box::new(TableScan::new(dt)),
            Expr::And(
                Box::new(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(9100))),
                Box::new(Expr::cmp(CmpOp::Lt, Expr::col(1), Expr::int(9200))),
            ),
        );
        let built = flow_table(Box::new(inner), "d_dict_f", FlowTableOptions::default());
        let fschema = TableScan::new(built.table.clone()).schema().clone();
        assert!(built.table.columns[0].metadata.dense.is_true());
        let j = Join::new(
            Box::new(TableScan::new(t)),
            &built.table,
            &fschema,
            0,
            0,
            &[1],
            JoinKind::Inner,
        );
        assert!(matches!(j.choice, JoinChoice::Fetch { .. }));
        let blocks = crate::drain(Box::new(j));
        let total: usize = blocks.iter().map(|b| b.len).sum();
        // 100 of 365 days survive the range.
        let expect = (0..50_000)
            .filter(|i| (100..200).contains(&(i % 365)))
            .count();
        assert_eq!(total, expect);
    }

    #[test]
    fn string_dictionary_includes_null_token_when_nulls_present() {
        // A NULL-accepting predicate pushed to the inner side must be able
        // to keep NULL rows: the token domain therefore includes the
        // reserved NULL token exactly when the column may hold NULLs.
        // Found by tde-fuzz seed 8 (NOT(s >= lit) dropped all NULL rows).
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        s.append_str(Some("x"));
        s.append_str(None);
        let col = s.finish().column;
        let (dt, _) = dictionary_table(&col, "s_dict");
        assert_eq!(dt.row_count(), 2);
        assert_eq!(dt.columns[0].data.decode_all()[0], 0);
    }

    #[test]
    fn string_dictionary_table() {
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        for i in 0..1000usize {
            s.append_str(Some(["red", "green", "blue"][i % 3]));
        }
        let t = Arc::new(Table::new("t", vec![s.finish().column]));
        let (dt, schema) = dictionary_table(&t.columns[0], "s_dict");
        assert_eq!(dt.row_count(), 3);
        let (vi, _) = value_field(&schema);
        let col = &dt.columns[vi];
        // Heap order after the builder's sorting pass is collation order.
        assert_eq!(col.value(0), Value::Str("blue".into()));
        assert_eq!(col.value(1), Value::Str("green".into()));
        assert_eq!(col.value(2), Value::Str("red".into()));
    }
}

//! Execution blocks and schemas.
//!
//! Inside the engine every column is a vector of `i64` in one of three
//! *representations*: plain scalars (with `Real` as bit patterns), heap
//! tokens, or dictionary indexes. The representation travels in the
//! schema, not the block, so blocks stay plain buffers. Keeping
//! compressed representations flowing between operators — instead of
//! widening the inter-operator interfaces — is exactly what the invisible
//! join formulation buys (paper §4.1.1).

use std::sync::Arc;
use tde_encodings::ColumnMetadata;
use tde_storage::StringHeap;
use tde_types::sentinel::NULL_TOKEN;
use tde_types::{DataType, Value};

/// How a column's `i64` values map to logical values.
#[derive(Debug, Clone)]
pub enum Repr {
    /// Scalar of the field's data type (`Real` travels as `f64` bits).
    Scalar,
    /// Byte-offset token into a frozen string heap.
    Token(Arc<StringHeap>),
    /// Byte-offset token into a *growing* compute heap — produced by
    /// string functions mid-query (§4.1.2); FlowTable freezes it.
    TokenCell(Arc<parking_lot::RwLock<StringHeap>>),
    /// Index into a scalar dictionary (array compression, §2.3.2).
    DictIndex(Arc<Vec<i64>>),
}

impl Repr {
    /// Whether this is the scalar representation.
    pub fn is_scalar(&self) -> bool {
        matches!(self, Repr::Scalar)
    }
}

/// One column of an operator's output.
#[derive(Debug, Clone)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub dtype: DataType,
    /// Value representation.
    pub repr: Repr,
    /// Metadata the upstream operator can assert about this column — the
    /// carrier of the tactical optimizer's knowledge (§3.4.2).
    pub metadata: ColumnMetadata,
}

impl Field {
    /// A scalar field with unknown metadata.
    pub fn scalar(name: impl Into<String>, dtype: DataType) -> Field {
        Field {
            name: name.into(),
            dtype,
            repr: Repr::Scalar,
            metadata: ColumnMetadata::unknown(),
        }
    }

    /// Materialize a stored `i64` as a boxed [`Value`].
    pub fn value_of(&self, raw: i64) -> Value {
        match &self.repr {
            Repr::Scalar => match self.dtype {
                DataType::Real => {
                    let f = f64::from_bits(raw as u64);
                    if tde_types::is_null_real(f) {
                        Value::Null
                    } else {
                        Value::Real(f)
                    }
                }
                dt => Value::from_i64(dt, raw),
            },
            Repr::Token(heap) => {
                if raw as u64 == NULL_TOKEN {
                    Value::Null
                } else {
                    Value::Str(heap.get_raw(raw as u64).to_owned())
                }
            }
            Repr::TokenCell(cell) => {
                if raw as u64 == NULL_TOKEN {
                    Value::Null
                } else {
                    Value::Str(cell.read().get_raw(raw as u64).to_owned())
                }
            }
            Repr::DictIndex(dict) => {
                let scalar = dict[raw as usize];
                Value::from_i64(self.dtype, scalar)
            }
        }
    }
}

/// The NULL sentinel in a field's stored `i64` domain.
pub fn null_raw(field: &Field) -> i64 {
    match (&field.repr, field.dtype) {
        (Repr::Token(_) | Repr::TokenCell(_), _) => NULL_TOKEN as i64,
        (Repr::Scalar, DataType::Real) => tde_types::sentinel::null_real().to_bits() as i64,
        // Dictionary indexes have no NULL slot; NULLs surface as the
        // scalar sentinel after expansion.
        _ => tde_types::sentinel::NULL_I64,
    }
}

/// An operator's output shape.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    /// The fields.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field by name (panics if missing — plan construction validates).
    pub fn field(&self, name: &str) -> &Field {
        &self.fields[self
            .index_of(name)
            .unwrap_or_else(|| panic!("no column named {name}"))]
    }
}

/// A block of rows: one `i64` vector per column, all `len` long.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Column vectors.
    pub columns: Vec<Vec<i64>>,
    /// Row count.
    pub len: usize,
}

impl Block {
    /// An empty block shaped for `ncols` columns.
    pub fn empty(ncols: usize) -> Block {
        Block {
            columns: vec![Vec::new(); ncols],
            len: 0,
        }
    }

    /// Build from column vectors.
    pub fn new(columns: Vec<Vec<i64>>) -> Block {
        let len = columns.first().map_or(0, Vec::len);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Block { columns, len }
    }

    /// Keep only the rows where `keep` is true.
    pub fn filter(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        for col in &mut self.columns {
            let mut w = 0;
            for r in 0..keep.len() {
                if keep[r] {
                    col[w] = col[r];
                    w += 1;
                }
            }
            col.truncate(w);
        }
        self.len = keep.iter().filter(|&&k| k).count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_filter() {
        let mut b = Block::new(vec![vec![1, 2, 3, 4], vec![10, 20, 30, 40]]);
        b.filter(&[true, false, true, false]);
        assert_eq!(b.len, 2);
        assert_eq!(b.columns[0], vec![1, 3]);
        assert_eq!(b.columns[1], vec![10, 30]);
    }

    #[test]
    fn field_value_materialization() {
        let f = Field::scalar("x", DataType::Integer);
        assert_eq!(f.value_of(5), Value::Int(5));

        let mut heap = StringHeap::new();
        let t = heap.append("hi") as i64;
        let f = Field {
            name: "s".into(),
            dtype: DataType::Str,
            repr: Repr::Token(Arc::new(heap)),
            metadata: ColumnMetadata::unknown(),
        };
        assert_eq!(f.value_of(t), Value::Str("hi".into()));
        assert_eq!(f.value_of(0), Value::Null);

        let f = Field {
            name: "d".into(),
            dtype: DataType::Integer,
            repr: Repr::DictIndex(Arc::new(vec![100, 200])),
            metadata: ColumnMetadata::unknown(),
        };
        assert_eq!(f.value_of(1), Value::Int(200));
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![
            Field::scalar("a", DataType::Integer),
            Field::scalar("b", DataType::Real),
        ]);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert_eq!(s.field("a").name, "a");
    }
}

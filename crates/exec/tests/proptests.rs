//! Property tests for the execution engine: operators must agree with
//! naive reference implementations on arbitrary inputs, and the
//! decompression-join operators must be exact row-level equivalents of
//! their scan-based counterparts.

include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/common/proptest_env.rs"
));

use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;
use tde_exec::aggregate::{AggSpec, HashAggregate, OrderedAggregate};
use tde_exec::expr::{AggFunc, CmpOp, Expr};
use tde_exec::filter::Filter;
use tde_exec::index_table::index_table;
use tde_exec::indexed_scan::IndexedScan;
use tde_exec::scan::TableScan;
use tde_exec::sort::{Sort, SortOrder};
use tde_exec::topn::TopN;
use tde_exec::{drain, BoxOp};
use tde_storage::{Column, ColumnBuilder, EncodingPolicy, Table};
use tde_types::{DataType, Width};

fn table_of(cols: Vec<(&str, Vec<i64>)>) -> Arc<Table> {
    let built = cols
        .into_iter()
        .map(|(name, vals)| {
            let mut b = ColumnBuilder::new(name, DataType::Integer, EncodingPolicy::default());
            b.append_raw(&vals);
            b.finish().column
        })
        .collect();
    Arc::new(Table::new("t", built))
}

fn rle_table_of(
    runs: &[(i64, u64)],
    payload: impl Fn(usize) -> i64,
) -> (Arc<Table>, Vec<i64>, Vec<i64>) {
    let mut key_data = Vec::new();
    for &(v, c) in runs {
        key_data.extend(std::iter::repeat_n(v.rem_euclid(100), c as usize));
    }
    let pay: Vec<i64> = (0..key_data.len()).map(payload).collect();
    let mut key = tde_encodings::EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W1);
    for c in key_data.chunks(tde_encodings::BLOCK_SIZE) {
        key.append_block(c).unwrap();
    }
    let pay_stream = tde_encodings::dynamic::encode_all(&pay, Width::W8, true).stream;
    let t = Arc::new(Table::new(
        "t",
        vec![
            Column::scalar("key", DataType::Integer, key),
            Column::scalar("pay", DataType::Integer, pay_stream),
        ],
    ));
    (t, key_data, pay)
}

fn rows_of(op: BoxOp) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    for b in drain(op) {
        for r in 0..b.len {
            out.push(b.columns.iter().map(|c| c[r]).collect());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(24)))]

    #[test]
    fn scan_emits_exact_values(data in vec(any::<i64>(), 1..3000)) {
        let t = table_of(vec![("a", data.clone())]);
        let rows = rows_of(Box::new(TableScan::new(t)));
        let got: Vec<i64> = rows.iter().map(|r| r[0]).collect();
        prop_assert_eq!(got, data);
    }

    #[test]
    fn sort_is_a_permutation_in_order(data in vec(-500i64..500, 1..3000)) {
        let t = table_of(vec![("a", data.clone())]);
        let rows = rows_of(Box::new(Sort::new(
            Box::new(TableScan::new(t)),
            vec![(0, SortOrder::Asc)],
        )));
        let got: Vec<i64> = rows.iter().map(|r| r[0]).collect();
        let mut expect = data;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn topn_equals_sort_head(data in vec(-500i64..500, 1..2000), n in 1usize..50) {
        let t = table_of(vec![("a", data.clone())]);
        let top = rows_of(Box::new(TopN::new(
            Box::new(TableScan::new(t)),
            vec![(0, SortOrder::Asc)],
            n,
        )));
        let mut expect = data;
        expect.sort_unstable();
        expect.truncate(n);
        let got: Vec<i64> = top.iter().map(|r| r[0]).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn filter_conjunction_matches_reference(
        data in vec(-50i64..50, 1..2500),
        lo in -50i64..0,
        hi in 0i64..50,
    ) {
        let t = table_of(vec![("a", data.clone())]);
        let pred = Expr::And(
            Box::new(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(lo))),
            Box::new(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(hi))),
        );
        let rows = rows_of(Box::new(Filter::new(Box::new(TableScan::new(t)), pred)));
        let expect: Vec<i64> = data.into_iter().filter(|&v| v >= lo && v < hi).collect();
        let got: Vec<i64> = rows.iter().map(|r| r[0]).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn hash_and_ordered_aggregate_agree_on_grouped_input(
        runs in vec((0i64..30, 1u64..100), 1..40),
    ) {
        // Grouped (sorted) input: both aggregation flavours must agree.
        let mut sorted_runs: Vec<(i64, u64)> = runs;
        sorted_runs.sort_by_key(|r| r.0);
        let (t, _, _) = rle_table_of(&sorted_runs, |i| (i as i64 * 37) % 1000);
        let specs = vec![
            AggSpec::new(AggFunc::Count, 1, "n"),
            AggSpec::new(AggFunc::Sum, 1, "s"),
            AggSpec::new(AggFunc::Min, 1, "lo"),
            AggSpec::new(AggFunc::Max, 1, "hi"),
        ];
        let mut hashed = rows_of(Box::new(HashAggregate::new(
            Box::new(TableScan::new(t.clone())),
            vec![0],
            specs.clone(),
        )));
        hashed.sort_by_key(|r| r[0]);
        let ordered = rows_of(Box::new(OrderedAggregate::new(
            Box::new(TableScan::new(t)),
            vec![0],
            specs,
        )));
        prop_assert_eq!(hashed, ordered);
    }

    #[test]
    fn indexed_scan_equals_row_filter(
        runs in vec((0i64..100, 1u64..300), 1..30),
        threshold in 0i64..100,
    ) {
        let mut sorted_runs: Vec<(i64, u64)> = runs;
        sorted_runs.sort_by_key(|r| r.0);
        let (t, key_data, pay) = rle_table_of(&sorted_runs, |i| (i as i64).wrapping_mul(31) % 777);
        let (idx, _) = index_table(&t.columns[0], "idx");
        let inner = Filter::new(
            Box::new(TableScan::new(idx)),
            Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(threshold)),
        );
        let scan = IndexedScan::new(Box::new(inner), t, &["pay"]);
        let got = rows_of(Box::new(scan));
        let expect: Vec<(i64, i64)> = key_data
            .iter()
            .zip(&pay)
            .filter(|(&k, _)| k > threshold)
            .map(|(&k, &p)| (k, p))
            .collect();
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert_eq!((g[0], g[1]), *e);
        }
    }

    #[test]
    fn value_sorted_indexed_scan_is_sorted_and_complete(
        runs in vec((0i64..40, 1u64..200), 1..30),
    ) {
        let (t, key_data, _) = rle_table_of(&runs, |_| 0);
        let (idx, _) = index_table(&t.columns[0], "idx");
        let sorted = Sort::new(Box::new(TableScan::new(idx)), vec![(0, SortOrder::Asc)]);
        let scan = IndexedScan::new(Box::new(sorted), t, &[]);
        let got: Vec<i64> = rows_of(Box::new(scan)).iter().map(|r| r[0]).collect();
        let mut expect = key_data;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}

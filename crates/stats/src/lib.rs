//! # tde-stats — metrics export for the TDE engine
//!
//! Renders the process-wide [`tde_obs::metrics`] registry in two wire
//! formats:
//!
//! * **Prometheus text exposition** ([`prometheus_text`]): `# HELP` /
//!   `# TYPE` metadata, labeled samples, and histogram
//!   `_bucket`/`_sum`/`_count` series — scrapeable by any Prometheus-
//!   compatible collector. [`prometheus::validate`] is a strict parser
//!   used by tests and by the `tde-stats` binary's self-check.
//! * **JSON** ([`json_text`]): one object per instrument with its name,
//!   labels, kind, and value — consumed by `bench-gate` and ad-hoc
//!   tooling via the bundled [`minijson`] parser.
//!
//! The [`tef`] module renders query timelines from
//! [`tde_obs::timeline`] as Chrome Trace Event Format documents that
//! Perfetto and `chrome://tracing` load directly, with a strict
//! self-validator.
//!
//! The [`http`] module serves all of it from a minimal blocking
//! endpoint (`GET /metrics`, `GET /metrics.json`, `GET /spans`,
//! `GET /trace/<query_id>`) with no external dependencies.

pub mod http;
pub mod minijson;
pub mod prometheus;
pub mod tef;

use tde_obs::metrics::{MetricsSnapshot, SampleValue};

/// The global registry in Prometheus text exposition format.
pub fn prometheus_text() -> String {
    prometheus::render(&tde_obs::metrics::global().snapshot())
}

/// The global registry as JSON.
pub fn json_text() -> String {
    render_json(&tde_obs::metrics::global().snapshot())
}

/// Render any snapshot as JSON: `{"metrics":[{...},...]}`, one object
/// per instrument, in registry (sorted) order.
pub fn render_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(snapshot.samples.len() * 96 + 16);
    out.push_str("{\"metrics\":[");
    for (i, s) in snapshot.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        out.push_str(&tde_obs::json_escape(&s.name));
        out.push_str("\",\"labels\":{");
        for (j, (k, v)) in s.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&tde_obs::json_escape(k));
            out.push_str("\":\"");
            out.push_str(&tde_obs::json_escape(v));
            out.push('"');
        }
        out.push_str("},\"help\":\"");
        out.push_str(&tde_obs::json_escape(s.help));
        out.push_str("\",");
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!("\"type\":\"counter\",\"value\":{v}"));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!("\"type\":\"gauge\",\"value\":{v}"));
            }
            SampleValue::Histogram(h) => {
                out.push_str(&format!(
                    "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                    h.count, h.sum
                ));
                for (j, (bound, cum)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{bound},{cum}]"));
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_obs::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("tde_queries_total", "Queries executed").add(3);
        r.counter_with("tde_op_rows_total", "Rows", &[("op", "Scan")])
            .add(100);
        r.counter_with("tde_op_rows_total", "Rows", &[("op", "Filter")])
            .add(40);
        r.gauge("tde_pool_resident_bytes", "Resident").set(4096);
        let h = r.histogram("tde_query_latency_ns", "Latency");
        for v in [300u64, 900, 40_000] {
            h.observe(v);
        }
        r
    }

    #[test]
    fn json_round_trips_through_minijson() {
        let text = render_json(&sample_registry().snapshot());
        let v = minijson::parse(&text).expect("render_json must emit valid JSON");
        let metrics = v.get("metrics").unwrap().as_array().unwrap();
        assert_eq!(metrics.len(), 5);
        let q = metrics
            .iter()
            .find(|m| m.get("name").unwrap().as_str() == Some("tde_queries_total"))
            .unwrap();
        assert_eq!(q.get("type").unwrap().as_str(), Some("counter"));
        assert_eq!(q.get("value").unwrap().as_u64(), Some(3));
        let h = metrics
            .iter()
            .find(|m| m.get("name").unwrap().as_str() == Some("tde_query_latency_ns"))
            .unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(3));
        assert!(!h.get("buckets").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn prometheus_text_validates() {
        let text = prometheus::render(&sample_registry().snapshot());
        prometheus::validate(&text).expect("rendered exposition must validate");
        assert!(text.contains("# TYPE tde_query_latency_ns histogram"));
        assert!(text.contains("tde_op_rows_total{op=\"Scan\"} 100"));
        assert!(text.contains("le=\"+Inf\""));
    }

    #[test]
    fn global_exports_are_consistent() {
        // The global registry may be disabled (TDE_METRICS=0) or already
        // populated by sibling tests; only shape is asserted.
        let text = prometheus_text();
        prometheus::validate(&text).unwrap();
        minijson::parse(&json_text()).unwrap();
    }
}

//! A minimal blocking scrape endpoint: `GET /metrics` (Prometheus text
//! exposition), `GET /metrics.json` (JSON), `GET /spans` (the recent
//! query-trace ring as JSON summaries), and `GET /trace/<query_id>`
//! (one query's timeline in Chrome Trace Event Format), no
//! dependencies.
//!
//! This is deliberately tiny — one thread, one connection at a time,
//! request line only — because a scrape target needs nothing more. The
//! `tde-stats serve` subcommand wraps [`StatsServer::serve_forever`];
//! tests drive [`StatsServer::serve_one`] against an ephemeral port.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// A bound scrape listener.
pub struct StatsServer {
    listener: TcpListener,
}

impl StatsServer {
    /// Bind to `addr` (e.g. `"127.0.0.1:9187"`, or port 0 for an
    /// ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<StatsServer> {
        Ok(StatsServer {
            listener: TcpListener::bind(addr)?,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and answer exactly one request.
    pub fn serve_one(&self) -> std::io::Result<()> {
        let (stream, _) = self.listener.accept()?;
        handle(stream)
    }

    /// Accept and answer requests until the process exits. Per-request
    /// errors (a scraper hanging up mid-request) are swallowed.
    pub fn serve_forever(&self) -> std::io::Result<()> {
        loop {
            let (stream, _) = self.listener.accept()?;
            let _ = handle(stream);
        }
    }
}

fn handle(stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_owned(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::prometheus_text(),
            ),
            "/metrics.json" => ("200 OK", "application/json", crate::json_text()),
            "/spans" => ("200 OK", "application/json", spans_json()),
            "/" => (
                "200 OK",
                "text/plain",
                "tde-stats: /metrics (Prometheus), /metrics.json, /spans, /trace/<query_id>\n"
                    .to_owned(),
            ),
            _ => match path.strip_prefix("/trace/") {
                Some(id) => match id.parse::<u64>().ok().and_then(|id| {
                    tde_obs::timeline::find_trace(id).map(|t| crate::tef::render_trace(&t))
                }) {
                    Some(tef) => ("200 OK", "application/json", tef),
                    None => (
                        "404 Not Found",
                        "text/plain",
                        "no such query in the trace ring\n".to_owned(),
                    ),
                },
                None => ("404 Not Found", "text/plain", "not found\n".to_owned()),
            },
        }
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// JSON summaries of the recent-query ring served at `/spans`: newest
/// last, one object per retained trace (full timelines are fetched per
/// query via `/trace/<query_id>`).
pub fn spans_json() -> String {
    let mut out = String::from("{\"traces\":[");
    for (i, t) in tde_obs::timeline::recent_traces().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let error = match &t.error {
            Some(e) => format!(",\"error\":\"{}\"", tde_obs::json_escape(e)),
            None => String::new(),
        };
        out.push_str(&format!(
            "{{\"query_id\":{},\"plan_digest\":\"{}\",\"rows_out\":{},\
             \"elapsed_ns\":{},\"slow\":{},\"events\":{}{error}}}",
            t.query_id,
            tde_obs::json_escape(&t.plan_digest),
            t.rows_out,
            t.elapsed_ns,
            t.slow,
            t.events.len(),
        ));
    }
    out.push_str("]}");
    out
}

/// Fetch `path` from a [`StatsServer`] (test helper): returns
/// `(status_line, body)`.
pub fn fetch(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(String, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: tde\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.lines().next().unwrap_or("").to_owned();
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_both_formats_and_404s() {
        let server = StatsServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            for _ in 0..5 {
                server.serve_one().unwrap();
            }
        });
        let (status, body) = fetch(addr, "/metrics").unwrap();
        assert!(status.contains("200"), "{status}");
        crate::prometheus::validate(&body).unwrap();
        let (status, body) = fetch(addr, "/metrics.json").unwrap();
        assert!(status.contains("200"), "{status}");
        crate::minijson::parse(&body).unwrap();
        let (status, body) = fetch(addr, "/spans").unwrap();
        assert!(status.contains("200"), "{status}");
        let v = crate::minijson::parse(&body).unwrap();
        assert!(v.get("traces").unwrap().as_array().is_some());
        let (status, _) = fetch(addr, "/trace/18446744073709551615").unwrap();
        assert!(status.contains("404"), "{status}");
        let (status, _) = fetch(addr, "/nope").unwrap();
        assert!(status.contains("404"), "{status}");
        handle.join().unwrap();
    }
}

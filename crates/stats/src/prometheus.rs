//! Prometheus text exposition format: renderer and strict validator.
//!
//! The renderer follows the text format v0.0.4: `# HELP` and `# TYPE`
//! metadata once per metric family, one sample per line, histograms
//! expanded into cumulative `_bucket{le="…"}` series plus `_sum` and
//! `_count`. The validator re-parses a scrape and checks structure the
//! format requires — it is what the acceptance test and the `tde-stats`
//! binary's self-check run against.

use std::collections::BTreeMap;

use tde_obs::metrics::{MetricsSnapshot, SampleValue};

/// Escape a label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escape HELP text: `\` → `\\`, newline → `\n`.
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Render a snapshot in text exposition format.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(snapshot.samples.len() * 64 + 64);
    let mut seen_meta: Option<&str> = None;
    for s in &snapshot.samples {
        // Samples arrive sorted by name, so metadata is emitted exactly
        // once, immediately before the family's first sample.
        if seen_meta != Some(s.name.as_str()) {
            seen_meta = Some(s.name.as_str());
            let kind = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n", s.name, escape_help(s.help)));
            out.push_str(&format!("# TYPE {} {kind}\n", s.name));
        }
        match &s.value {
            SampleValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    s.name,
                    render_labels(&s.labels, None)
                ));
            }
            SampleValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    s.name,
                    render_labels(&s.labels, None)
                ));
            }
            SampleValue::Histogram(h) => {
                for (bound, cum) in &h.buckets {
                    out.push_str(&format!(
                        "{}_bucket{} {cum}\n",
                        s.name,
                        render_labels(&s.labels, Some(("le", &bound.to_string())))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    render_labels(&s.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
#[derive(Debug, Clone)]
pub struct ParsedSample {
    /// Metric name as written (including `_bucket`/`_sum` suffixes).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse the label block `name="value",…` (without braces).
fn parse_labels(mut s: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    loop {
        s = s.trim_start();
        if s.is_empty() {
            return Ok(labels);
        }
        let eq = s
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without '='"))?;
        let name = s[..eq].trim();
        if !valid_label_name(name) {
            return Err(format!("line {line_no}: bad label name {name:?}"));
        }
        s = s[eq + 1..].trim_start();
        if !s.starts_with('"') {
            return Err(format!("line {line_no}: label value must be quoted"));
        }
        s = &s[1..];
        let mut value = String::new();
        let mut chars = s.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => {
                        return Err(format!("line {line_no}: bad escape {other:?}"));
                    }
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((name.to_owned(), value));
        s = s[end + 1..].trim_start();
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
        } else if !s.is_empty() {
            return Err(format!("line {line_no}: junk after label value: {s:?}"));
        }
    }
}

fn parse_sample(line: &str, line_no: usize) -> Result<ParsedSample, String> {
    let (name_labels, value_str) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("line {line_no}: unbalanced '{{'"))?;
            if close < open {
                return Err(format!("line {line_no}: '}}' before '{{'"));
            }
            let name = line[..open].trim();
            let labels = parse_labels(&line[open + 1..close], line_no)?;
            ((name.to_owned(), labels), line[close + 1..].trim())
        }
        None => {
            let mut parts = line.splitn(2, char::is_whitespace);
            let name = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: empty sample"))?;
            (
                (name.to_owned(), Vec::new()),
                parts.next().unwrap_or("").trim(),
            )
        }
    };
    let (name, labels) = name_labels;
    if !valid_metric_name(&name) {
        return Err(format!("line {line_no}: bad metric name {name:?}"));
    }
    // Value, optionally followed by a timestamp (which we accept and drop).
    let mut fields = value_str.split_whitespace();
    let raw = fields
        .next()
        .ok_or_else(|| format!("line {line_no}: sample without value"))?;
    let value = match raw {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        raw => raw
            .parse::<f64>()
            .map_err(|_| format!("line {line_no}: bad value {raw:?}"))?,
    };
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("line {line_no}: bad timestamp {ts:?}"))?;
    }
    if fields.next().is_some() {
        return Err(format!("line {line_no}: junk after timestamp"));
    }
    Ok(ParsedSample {
        name,
        labels,
        value,
    })
}

/// A parsed scrape: metadata plus samples, as the validator saw them.
#[derive(Debug, Default)]
pub struct Scrape {
    /// `# TYPE` declarations, name → type.
    pub types: BTreeMap<String, String>,
    /// `# HELP` declarations, name → help text.
    pub helps: BTreeMap<String, String>,
    /// Every sample line in order.
    pub samples: Vec<ParsedSample>,
}

impl Scrape {
    /// The value of the first sample matching `name` exactly (including
    /// any `_bucket`/`_sum` suffix) and containing every given label.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .map(|s| s.value)
    }
}

/// Parse and validate a text-exposition scrape. Checks, beyond line
/// syntax: `# TYPE` precedes the family's first sample; declared
/// histogram families carry a `+Inf` bucket whose cumulative count
/// equals `_count`, with bucket counts monotone in `le` order.
pub fn validate(text: &str) -> Result<Scrape, String> {
    let mut scrape = Scrape::default();
    let mut sampled: Vec<String> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if let Some(meta) = rest.strip_prefix("HELP ") {
                let mut parts = meta.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: bad HELP name {name:?}"));
                }
                scrape
                    .helps
                    .insert(name.to_owned(), parts.next().unwrap_or("").to_owned());
            } else if let Some(meta) = rest.strip_prefix("TYPE ") {
                let mut parts = meta.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: bad TYPE name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: bad TYPE kind {kind:?}"));
                }
                if sampled.iter().any(|s| family_of(s) == name) {
                    return Err(format!(
                        "line {line_no}: TYPE {name} after its first sample"
                    ));
                }
                if scrape
                    .types
                    .insert(name.to_owned(), kind.to_owned())
                    .is_some()
                {
                    return Err(format!("line {line_no}: duplicate TYPE {name}"));
                }
            }
            // Other comments are allowed and ignored.
            continue;
        }
        let sample = parse_sample(line, line_no)?;
        sampled.push(sample.name.clone());
        scrape.samples.push(sample);
    }
    validate_histograms(&scrape)?;
    Ok(scrape)
}

/// Strip histogram series suffixes to get the declaring family name.
fn family_of(sample_name: &str) -> &str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = sample_name.strip_suffix(suffix) {
            return base;
        }
    }
    sample_name
}

fn validate_histograms(scrape: &Scrape) -> Result<(), String> {
    for (name, kind) in &scrape.types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{name}_bucket");
        let count_name = format!("{name}_count");
        // Group buckets by their non-`le` labels (one histogram per
        // label set).
        type Series = BTreeMap<Vec<(String, String)>, Vec<(f64, f64)>>;
        let mut series: Series = BTreeMap::new();
        for s in scrape.samples.iter().filter(|s| s.name == bucket_name) {
            let mut rest: Vec<(String, String)> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .cloned()
                .collect();
            rest.sort();
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| format!("{bucket_name}: bucket without le label"))?;
            let bound = match le.1.as_str() {
                "+Inf" => f64::INFINITY,
                b => b
                    .parse::<f64>()
                    .map_err(|_| format!("{bucket_name}: bad le {b:?}"))?,
            };
            series.entry(rest).or_default().push((bound, s.value));
        }
        for (labels, buckets) in &series {
            let inf = buckets
                .iter()
                .find(|(b, _)| b.is_infinite())
                .ok_or_else(|| format!("{name}{labels:?}: histogram without +Inf bucket"))?;
            let mut prev = -1.0f64;
            let mut prev_cum = 0.0f64;
            let mut sorted = buckets.clone();
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for (bound, cum) in sorted {
                if bound == prev {
                    return Err(format!("{name}: duplicate le bound {bound}"));
                }
                if cum < prev_cum {
                    return Err(format!(
                        "{name}: bucket counts not cumulative at le={bound}"
                    ));
                }
                prev = bound;
                prev_cum = cum;
            }
            let label_pairs: Vec<(&str, &str)> = labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            if let Some(count) = scrape.value(&count_name, &label_pairs) {
                if (count - inf.1).abs() > f64::EPSILON {
                    return Err(format!("{name}: +Inf bucket {} != _count {count}", inf.1));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_well_formed_scrape() {
        let text = "\
# HELP q_total Queries.
# TYPE q_total counter
q_total 4
# HELP lat_ns Latency.
# TYPE lat_ns histogram
lat_ns_bucket{le=\"255\"} 1
lat_ns_bucket{le=\"1023\"} 3
lat_ns_bucket{le=\"+Inf\"} 4
lat_ns_sum 5000
lat_ns_count 4
";
        let scrape = validate(text).unwrap();
        assert_eq!(scrape.value("q_total", &[]), Some(4.0));
        assert_eq!(scrape.value("lat_ns_bucket", &[("le", "1023")]), Some(3.0));
        assert_eq!(scrape.types["lat_ns"], "histogram");
    }

    #[test]
    fn rejects_malformed_scrapes() {
        // TYPE after first sample of the family.
        assert!(validate("x_total 1\n# TYPE x_total counter\n").is_err());
        // Bad metric name.
        assert!(validate("9bad 1\n").is_err());
        // Unquoted label value.
        assert!(validate("x{a=b} 1\n").is_err());
        // Unparsable value.
        assert!(validate("x abc\n").is_err());
        // Histogram without +Inf.
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_count 1\n").is_err());
        // Non-cumulative buckets.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\n"
        )
        .is_err());
        // +Inf disagrees with _count.
        assert!(validate("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n").is_err());
    }

    #[test]
    fn parses_escaped_labels_and_timestamps() {
        let scrape =
            validate("m{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\\n\"} 2.5 1712345678\n").unwrap();
        assert_eq!(scrape.samples.len(), 1);
        assert_eq!(scrape.samples[0].labels[0].1, "a\\b");
        assert_eq!(scrape.samples[0].labels[1].1, "say \"hi\"\n");
        assert_eq!(scrape.samples[0].value, 2.5);
        // Special float values parse.
        let s = validate("m NaN\nn +Inf\n").unwrap();
        assert!(s.samples[0].value.is_nan());
        assert!(s.samples[1].value.is_infinite());
    }
}

//! Chrome Trace Event Format (TEF) rendering of query timelines.
//!
//! Turns [`QueryTrace`]s from the timeline ring into the JSON array
//! format Perfetto (`ui.perfetto.dev`) and `chrome://tracing` load
//! directly: `{"traceEvents":[...]}` with `"ph":"X"` complete events
//! (microsecond `ts`/`dur`), `"ph":"i"` instants, and `"ph":"M"`
//! process/thread-name metadata.
//!
//! Track layout: each query renders as its own *process* (`pid` =
//! query id), so multiple ring entries in one file stay separate in
//! the UI. Within a query, `tid 0` is the query track (the whole-query
//! span plus begin/end instants), engine threads map to `tid = lane+1`,
//! and morsel executions land on synthetic per-worker tracks
//! (`tid = 1000 + worker`, named `worker-N`) so a degree-`k` parallel
//! query shows `k` worker tracks regardless of which pool threads ran
//! the morsels.
//!
//! [`validate_tef`] is the strict self-check (built on [`minijson`])
//! the `tde-stats trace` subcommand and the test-suite run over every
//! rendered document before calling it loadable.

use crate::minijson;
use std::collections::BTreeMap;
use tde_obs::json_escape;
use tde_obs::timeline::{QueryTrace, TimelineKind};

/// Nanoseconds → the fractional-microsecond literal TEF wants.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

fn meta_thread_name(pid: u64, tid: u64, name: &str) -> String {
    format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
         \"args\":{{\"name\":\"{}\"}}}}",
        json_escape(name)
    )
}

/// Append one trace's events (as rendered JSON objects) to `out`.
fn push_trace(out: &mut Vec<String>, t: &QueryTrace) {
    let pid = t.query_id;
    let lane_names: BTreeMap<u32, &str> = t
        .lanes
        .iter()
        .map(|(lane, name)| (*lane, name.as_str()))
        .collect();
    out.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"query {pid} digest={}\"}}}}",
        json_escape(&t.plan_digest)
    ));
    out.push(meta_thread_name(pid, 0, "query"));
    let error = match &t.error {
        Some(e) => format!(",\"error\":\"{}\"", json_escape(e)),
        None => String::new(),
    };
    out.push(format!(
        "{{\"name\":\"query\",\"cat\":\"query\",\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\
         \"ts\":{},\"dur\":{},\"args\":{{\"query_id\":{pid},\"plan_digest\":\"{}\",\
         \"rows_out\":{},\"slow\":{}{error}}}}}",
        us(t.started_ns),
        us(t.elapsed_ns),
        json_escape(&t.plan_digest),
        t.rows_out,
        t.slow,
    ));
    // Name every track we are about to emit onto, exactly once.
    let mut named: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut name_track = |out: &mut Vec<String>, tid: u64, name: &str| {
        if named.insert(tid) {
            out.push(meta_thread_name(pid, tid, name));
        }
    };
    for ev in &t.events {
        let ts = us(ev.ts_ns);
        let lane_tid = u64::from(ev.lane) + 1;
        match &ev.kind {
            TimelineKind::QueryBegin { .. } => out.push(format!(
                "{{\"name\":\"query-begin\",\"cat\":\"query\",\"ph\":\"i\",\"pid\":{pid},\
                 \"tid\":0,\"ts\":{ts},\"s\":\"t\"}}"
            )),
            TimelineKind::QueryEnd { .. } => out.push(format!(
                "{{\"name\":\"query-end\",\"cat\":\"query\",\"ph\":\"i\",\"pid\":{pid},\
                 \"tid\":0,\"ts\":{ts},\"s\":\"t\"}}"
            )),
            TimelineKind::OperatorSpan {
                op,
                op_id,
                parent,
                blocks,
                rows,
                dur_ns,
            } => {
                name_lane(&mut name_track, out, lane_tid, ev.lane, &lane_names);
                out.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"operator\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{lane_tid},\"ts\":{ts},\"dur\":{},\"args\":{{\"op_id\":{op_id},\
                     \"parent\":{},\"blocks\":{blocks},\"rows\":{rows}}}}}",
                    json_escape(op),
                    us(*dur_ns),
                    parent.map_or("null".to_string(), |p| p.to_string()),
                ));
            }
            TimelineKind::Morsel {
                worker,
                morsel,
                stolen,
                dur_ns,
            } => {
                let tid = 1000 + u64::from(*worker);
                name_track(out, tid, &format!("worker-{worker}"));
                out.push(format!(
                    "{{\"name\":\"morsel\",\"cat\":\"morsel\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{tid},\"ts\":{ts},\"dur\":{},\"args\":{{\"worker\":{worker},\
                     \"morsel\":{morsel},\"stolen\":{stolen}}}}}",
                    us(*dur_ns),
                ));
            }
            TimelineKind::SegmentLoad {
                table,
                column,
                segment,
                bytes,
                dur_ns,
            } => {
                name_lane(&mut name_track, out, lane_tid, ev.lane, &lane_names);
                out.push(format!(
                    "{{\"name\":\"load {segment}\",\"cat\":\"pool\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{lane_tid},\"ts\":{ts},\"dur\":{},\"args\":{{\"table\":\"{}\",\
                     \"column\":\"{}\",\"bytes\":{bytes}}}}}",
                    us(*dur_ns),
                    json_escape(table),
                    json_escape(column),
                ));
            }
            TimelineKind::PoolEviction { bytes } => {
                name_lane(&mut name_track, out, lane_tid, ev.lane, &lane_names);
                out.push(format!(
                    "{{\"name\":\"pool-evict\",\"cat\":\"pool\",\"ph\":\"i\",\"pid\":{pid},\
                     \"tid\":{lane_tid},\"ts\":{ts},\"s\":\"t\",\"args\":{{\"bytes\":{bytes}}}}}"
                ));
            }
            TimelineKind::Compaction {
                table,
                delta_rows,
                tombstones,
                rows_out,
                dur_ns,
            } => {
                name_lane(&mut name_track, out, lane_tid, ev.lane, &lane_names);
                out.push(format!(
                    "{{\"name\":\"compaction\",\"cat\":\"delta\",\"ph\":\"X\",\"pid\":{pid},\
                     \"tid\":{lane_tid},\"ts\":{ts},\"dur\":{},\"args\":{{\"table\":\"{}\",\
                     \"delta_rows\":{delta_rows},\"tombstones\":{tombstones},\
                     \"rows_out\":{rows_out}}}}}",
                    us(*dur_ns),
                    json_escape(table),
                ));
            }
            TimelineKind::IoRetry { op } => {
                name_lane(&mut name_track, out, lane_tid, ev.lane, &lane_names);
                out.push(format!(
                    "{{\"name\":\"io-retry\",\"cat\":\"io\",\"ph\":\"i\",\"pid\":{pid},\
                     \"tid\":{lane_tid},\"ts\":{ts},\"s\":\"t\",\"args\":{{\"op\":\"{op}\"}}}}"
                ));
            }
            TimelineKind::IoFault { kind } => {
                name_lane(&mut name_track, out, lane_tid, ev.lane, &lane_names);
                out.push(format!(
                    "{{\"name\":\"io-fault\",\"cat\":\"io\",\"ph\":\"i\",\"pid\":{pid},\
                     \"tid\":{lane_tid},\"ts\":{ts},\"s\":\"t\",\"args\":{{\"kind\":\"{kind}\"}}}}"
                ));
            }
        }
    }
}

fn name_lane(
    name_track: &mut impl FnMut(&mut Vec<String>, u64, &str),
    out: &mut Vec<String>,
    tid: u64,
    lane: u32,
    lane_names: &BTreeMap<u32, &str>,
) {
    match lane_names.get(&lane) {
        Some(name) => name_track(out, tid, name),
        None => name_track(out, tid, &format!("lane-{lane}")),
    }
}

/// Render one query trace as a complete TEF document.
pub fn render_trace(t: &QueryTrace) -> String {
    render_traces(std::slice::from_ref(t))
}

/// Render several traces (e.g. the whole ring) as one TEF document;
/// each query appears as its own process in the UI.
pub fn render_traces<T: std::borrow::Borrow<QueryTrace>>(traces: &[T]) -> String {
    let mut out = Vec::new();
    for t in traces {
        push_trace(&mut out, t.borrow());
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        out.join(",")
    )
}

/// Strict structural validation of a TEF document: parseable JSON, a
/// `traceEvents` array, and every event carrying the fields its phase
/// requires (`X` → non-negative `ts`+`dur`; `i` → `ts` and a scope;
/// `M` → `args.name`). Returns the event count.
pub fn validate_tef(text: &str) -> Result<usize, String> {
    let doc = minijson::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let err = |msg: &str| format!("event {i}: {msg}");
        if ev.as_object().is_none() {
            return Err(err("not an object"));
        }
        let name = ev
            .get("name")
            .and_then(minijson::Value::as_str)
            .ok_or_else(|| err("missing name"))?;
        if name.is_empty() {
            return Err(err("empty name"));
        }
        let ph = ev
            .get("ph")
            .and_then(minijson::Value::as_str)
            .ok_or_else(|| err("missing ph"))?;
        ev.get("pid")
            .and_then(minijson::Value::as_u64)
            .ok_or_else(|| err("missing pid"))?;
        ev.get("tid")
            .and_then(minijson::Value::as_u64)
            .ok_or_else(|| err("missing tid"))?;
        let ts = || {
            ev.get("ts")
                .and_then(minijson::Value::as_f64)
                .filter(|t| *t >= 0.0)
        };
        match ph {
            "X" => {
                ts().ok_or_else(|| err("X event without non-negative ts"))?;
                ev.get("dur")
                    .and_then(minijson::Value::as_f64)
                    .filter(|d| *d >= 0.0)
                    .ok_or_else(|| err("X event without non-negative dur"))?;
            }
            "i" => {
                ts().ok_or_else(|| err("i event without non-negative ts"))?;
                let scope = ev
                    .get("s")
                    .and_then(minijson::Value::as_str)
                    .ok_or_else(|| err("i event without scope"))?;
                if !matches!(scope, "t" | "p" | "g") {
                    return Err(err("i event with invalid scope"));
                }
            }
            "M" => {
                ev.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(minijson::Value::as_str)
                    .ok_or_else(|| err("M event without args.name"))?;
            }
            other => return Err(err(&format!("unsupported phase {other:?}"))),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_obs::timeline::TimelineEvent;

    fn sample_trace() -> QueryTrace {
        QueryTrace {
            query_id: 42,
            plan_digest: "feedfacecafebeef".into(),
            rows_out: 100,
            elapsed_ns: 9_000,
            error: None,
            phases: vec![("plan", 1_000), ("execute", 8_000)],
            started_ns: 1_000,
            slow: false,
            lanes: vec![(0, "main".into())],
            events: vec![
                TimelineEvent {
                    ts_ns: 1_000,
                    lane: 0,
                    kind: TimelineKind::QueryBegin { query_id: 42 },
                },
                TimelineEvent {
                    ts_ns: 1_500,
                    lane: 0,
                    kind: TimelineKind::SegmentLoad {
                        table: "t".into(),
                        column: "c".into(),
                        segment: "stream",
                        bytes: 512,
                        dur_ns: 300,
                    },
                },
                TimelineEvent {
                    ts_ns: 2_000,
                    lane: 1,
                    kind: TimelineKind::Morsel {
                        worker: 3,
                        morsel: 7,
                        stolen: true,
                        dur_ns: 1_000,
                    },
                },
                TimelineEvent {
                    ts_ns: 2_500,
                    lane: 0,
                    kind: TimelineKind::OperatorSpan {
                        op: "HashAggregate".into(),
                        op_id: 1,
                        parent: None,
                        blocks: 4,
                        rows: 100,
                        dur_ns: 6_000,
                    },
                },
                TimelineEvent {
                    ts_ns: 3_000,
                    lane: 0,
                    kind: TimelineKind::PoolEviction { bytes: 64 },
                },
                TimelineEvent {
                    ts_ns: 4_000,
                    lane: 0,
                    kind: TimelineKind::IoRetry { op: "stream" },
                },
                TimelineEvent {
                    ts_ns: 5_000,
                    lane: 0,
                    kind: TimelineKind::IoFault { kind: "hard-read" },
                },
                TimelineEvent {
                    ts_ns: 6_000,
                    lane: 2,
                    kind: TimelineKind::Compaction {
                        table: "t".into(),
                        delta_rows: 10,
                        tombstones: 2,
                        rows_out: 1_000,
                        dur_ns: 500,
                    },
                },
                TimelineEvent {
                    ts_ns: 10_000,
                    lane: 0,
                    kind: TimelineKind::QueryEnd { query_id: 42 },
                },
            ],
        }
    }

    #[test]
    fn renders_every_event_kind_and_validates() {
        let doc = render_trace(&sample_trace());
        let n = validate_tef(&doc).unwrap();
        // 9 events + query X + process/thread metadata.
        assert!(n >= 12, "{n} events in {doc}");
        assert!(doc.contains("\"name\":\"morsel\""));
        assert!(doc.contains("\"tid\":1003"));
        assert!(doc.contains("worker-3"));
        assert!(doc.contains("\"name\":\"load stream\""));
        assert!(doc.contains("digest=feedfacecafebeef"));
        assert!(doc.contains("\"name\":\"compaction\""));
        // Fractional-microsecond timestamps.
        assert!(doc.contains("\"ts\":1.500"));
    }

    #[test]
    fn error_traces_carry_the_error() {
        let mut t = sample_trace();
        t.error = Some("injected hard read failure".into());
        t.rows_out = 0;
        let doc = render_trace(&t);
        validate_tef(&doc).unwrap();
        assert!(doc.contains("\"error\":\"injected hard read failure\""));
    }

    #[test]
    fn multi_trace_documents_use_one_process_per_query() {
        let mut b = sample_trace();
        b.query_id = 43;
        let doc = render_traces(&[sample_trace(), b]);
        validate_tef(&doc).unwrap();
        assert!(doc.contains("\"pid\":42"));
        assert!(doc.contains("\"pid\":43"));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_tef("{").is_err());
        assert!(validate_tef("{}").unwrap_err().contains("traceEvents"));
        assert!(validate_tef("{\"traceEvents\":1}").is_err());
        // Missing dur on an X event.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":1}]}";
        assert!(validate_tef(bad).unwrap_err().contains("dur"));
        // Unsupported phase.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"Z\",\"pid\":1,\"tid\":0}]}";
        assert!(validate_tef(bad).unwrap_err().contains("phase"));
        // Instant without scope.
        let bad = "{\"traceEvents\":[{\"name\":\"q\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":1}]}";
        assert!(validate_tef(bad).unwrap_err().contains("scope"));
        // Metadata without args.name.
        let bad = "{\"traceEvents\":[{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0}]}";
        assert!(validate_tef(bad).unwrap_err().contains("args.name"));
    }
}

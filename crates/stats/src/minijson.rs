//! A minimal JSON parser — enough to validate the engine's own JSON
//! output and to read `BenchReport` files in `bench-gate`.
//!
//! The repo deliberately has no serialization dependency; all JSON the
//! engine *writes* is hand-rolled. This module closes the loop on the
//! *read* side: full RFC 8259 syntax (objects, arrays, strings with
//! `\uXXXX` escapes and surrogate pairs, numbers, literals) with object
//! keys kept in document order. Numbers are stored as `f64`, which is
//! exact for every integer the engine emits (counters fit 2^53 in
//! practice; values beyond that round, as they would in any JS reader).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, keys in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup (objects only; first match wins).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// junk rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("json: {msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000
                                    + (((hi as u32) - 0xD800) << 10)
                                    + ((lo as u32) - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let int_len = self.pos - int_start;
        if int_len == 0 {
            return Err(self.err("number without digits"));
        }
        if int_len > 1 && self.bytes[int_start] == b'0' {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("fraction without digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("exponent without digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("unrepresentable number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_string_escapes() {
        let v = parse(r#""a\"b\\c\/\n\t\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/\n\tAé😀"));
    }

    #[test]
    fn integer_accessors_respect_range() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "01",
            "1.",
            "1e",
            "\"\\x\"",
            "\"\u{1}\"",
            "tru",
            "[1] x",
            "\"\\ud800\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_engine_json() {
        // The hand-rolled writers quote keys and use plain integers; a
        // representative explain_analyze-style fragment must parse.
        let text = r#"{"figure":"kernel_filter","sections":[["timing","{\"rows\":100}"]]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("figure").unwrap().as_str(), Some("kernel_filter"));
    }
}

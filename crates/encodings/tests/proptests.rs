//! Property-based tests for the encoding layer: every encoding must
//! round-trip arbitrary data it accepts, the dynamic encoder must
//! round-trip *any* data, and the header manipulations must never change
//! decoded values.

include!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/common/proptest_env.rs"
));

use proptest::collection::vec;
use proptest::prelude::*;
use tde_encodings::dynamic::encode_all;
use tde_encodings::manipulate::{narrow, packed_body, rle_decompose, rle_rebuild};
use tde_encodings::stats::{choose_encoding, AllowedAlgorithms, ColumnStats};
use tde_encodings::{bitpack, Algorithm, EncodedStream, BLOCK_SIZE};
use tde_types::Width;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(proptest_cases(64)))]

    #[test]
    fn bitpack_roundtrip(bits in 0u8..=64, seed in any::<u64>(), count in 1usize..300) {
        let mask = if bits == 0 { 0 } else if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let values: Vec<u64> = (0..count as u64)
            .map(|i| seed.wrapping_mul(i.wrapping_add(0x9E37_79B9)) & mask)
            .collect();
        let mut packed = Vec::new();
        bitpack::pack(&values, bits, &mut packed);
        let mut out = Vec::new();
        bitpack::unpack(&packed, bits, values.len(), &mut out);
        prop_assert_eq!(&out, &values);
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(bitpack::get_one(&packed, bits, i), v);
        }
    }

    #[test]
    fn dynamic_encoder_roundtrips_anything(data in vec(any::<i64>(), 0..4000)) {
        let r = encode_all(&data, Width::W8, true);
        prop_assert_eq!(r.stream.decode_all(), data.clone());
        prop_assert_eq!(r.stats.count, data.len() as u64);
    }

    #[test]
    fn dynamic_encoder_small_domain(data in vec(0i64..30, 0..5000)) {
        let r = encode_all(&data, Width::W8, true);
        prop_assert_eq!(r.stream.decode_all(), data.clone());
        // A small domain must never stay raw once there is enough data.
        if data.len() > 2 * BLOCK_SIZE {
            prop_assert_ne!(r.stream.algorithm(), Algorithm::None);
        }
    }

    #[test]
    fn chosen_encoding_accepts_described_data(data in vec(-1000i64..1000, 1..3000)) {
        // Any encoding chosen from complete statistics must accept every
        // block of the data it was chosen for.
        let mut stats = ColumnStats::new();
        stats.update(&data);
        let spec = choose_encoding(&stats, Width::W8, AllowedAlgorithms::all(), true);
        let mut stream = spec.build(Width::W8, true);
        for chunk in data.chunks(BLOCK_SIZE) {
            prop_assert!(stream.append_block(chunk).is_ok(), "spec {:?} rejected data", spec);
        }
        prop_assert_eq!(stream.decode_all(), data);
    }

    #[test]
    fn narrowing_never_changes_values(data in vec(0i64..120, 1..2000)) {
        let r = encode_all(&data, Width::W8, true);
        let mut s = r.stream;
        let before = s.decode_all();
        let body = packed_body(&s).to_vec();
        narrow(&mut s);
        prop_assert_eq!(s.decode_all(), before);
        prop_assert_eq!(packed_body(&s), &body[..]);
    }

    #[test]
    fn random_access_matches_sequential(data in vec(any::<i64>(), 1..2000), idx in any::<prop::sample::Index>()) {
        let r = encode_all(&data, Width::W8, true);
        let i = idx.index(data.len());
        prop_assert_eq!(r.stream.get(i as u64), data[i]);
    }

    #[test]
    fn rle_decompose_rebuild_identity(runs in vec((-100i64..100, 1u64..50), 1..60)) {
        let mut data = Vec::new();
        // Merge adjacent equal-valued runs the way the encoder would.
        for &(v, c) in &runs {
            data.extend(std::iter::repeat_n(v, c as usize));
        }
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for chunk in data.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        let (values, counts) = rle_decompose(&s);
        let rebuilt = rle_rebuild(&values, &counts, true);
        prop_assert_eq!(rebuilt.decode_all(), data);
    }

    #[test]
    fn serialization_roundtrip(data in vec(-50i64..50, 1..3000)) {
        let r = encode_all(&data, Width::W8, true);
        let bytes = r.stream.as_bytes().to_vec();
        let restored = EncodedStream::from_buf(bytes);
        prop_assert_eq!(restored.decode_all(), data);
        prop_assert_eq!(restored.algorithm(), r.stream.algorithm());
    }

    #[test]
    fn stats_min_max_are_exact(data in vec(any::<i64>(), 1..1000)) {
        let mut stats = ColumnStats::new();
        stats.update(&data);
        prop_assert_eq!(stats.min, *data.iter().min().unwrap());
        prop_assert_eq!(stats.max, *data.iter().max().unwrap());
        prop_assert_eq!(stats.count, data.len() as u64);
    }

    #[test]
    fn stats_sortedness_is_exact(data in vec(-20i64..20, 2..500)) {
        let mut stats = ColumnStats::new();
        stats.update(&data);
        let actually_sorted = data.windows(2).all(|w| w[0] <= w[1]);
        prop_assert_eq!(stats.is_sorted_asc(), actually_sorted);
    }
}

//! Dictionary encoding (paper §3.1.3).
//!
//! The header starts with 8 bytes containing the number of dictionary
//! entries, followed by enough space to contain `2^bits` entries — which is
//! what allows the dictionary to grow up to its limit without moving the
//! packed index data. Entries are stored at the stream's element width, so
//! narrowing a dictionary-encoded column costs `O(2^bits)` (rewriting the
//! entries), independent of the number of rows (§3.4.1).
//!
//! Packed values are indexes into the entry table in order of first
//! appearance; the sorted-heap manipulation of §3.4.3 permutes the entry
//! *values* in place without touching the indexes.

use crate::bitpack;
use crate::cuckoo::CuckooMap;
use crate::header::{self, HeaderView};
use crate::{Algorithm, EncodingFull, DICT_MAX_BITS};
use std::collections::HashMap;
use tde_types::Width;

/// Offset of the entry count within the header.
pub const OFF_ENTRY_COUNT: usize = header::COMMON_LEN;

/// Offset of the first entry slot.
pub const OFF_ENTRIES: usize = header::COMMON_LEN + 8;

/// Create an empty dictionary stream buffer with room for `2^bits` entries.
pub fn new_stream(width: Width, block_size: usize, signed: bool, bits: u8) -> Vec<u8> {
    assert!(
        bits <= DICT_MAX_BITS,
        "dictionary encodings are limited to 2^{DICT_MAX_BITS} values"
    );
    let slots = 1usize << bits;
    let extra = 8 + slots * width.bytes();
    let mut buf = header::make_common(
        Algorithm::Dictionary,
        width,
        bits,
        block_size,
        signed,
        extra,
    );
    header::put_u64(&mut buf, OFF_ENTRY_COUNT, 0);
    buf
}

/// Number of dictionary entries.
pub fn entry_count(buf: &[u8]) -> usize {
    header::get_u64(buf, OFF_ENTRY_COUNT) as usize
}

/// Read entry `i` at the stream's current element width.
#[inline]
pub fn entry(buf: &[u8], h: &HeaderView, i: usize) -> i64 {
    header::get_fixed(buf, OFF_ENTRIES + i * h.width.bytes(), h.width, h.signed)
}

/// All entries in insertion order.
pub fn entries(buf: &[u8], h: &HeaderView) -> Vec<i64> {
    (0..entry_count(buf)).map(|i| entry(buf, h, i)).collect()
}

/// Overwrite entry `i`. Used by the narrowing and heap-sorting
/// manipulations; the packed index data is untouched.
pub fn set_entry(buf: &mut [u8], h: &HeaderView, i: usize, v: i64) {
    header::put_fixed(buf, OFF_ENTRIES + i * h.width.bytes(), h.width, v);
}

/// Rebuild the transient value→index cuckoo map from the stored entries
/// (after deserializing a stream we want to append to).
pub fn rebuild_index(buf: &[u8], h: &HeaderView) -> CuckooMap {
    let n = entry_count(buf);
    let mut m = CuckooMap::with_capacity(n.max(1 << h.bits.min(8)));
    for i in 0..n {
        m.insert(entry(buf, h, i), i as u16);
    }
    m
}

/// Append one block. New distinct values are added to the dictionary; if
/// the block would push the entry count past `2^bits` the buffer is left
/// unchanged and the dynamic encoder re-encodes with more bits or a
/// different algorithm.
pub fn append_block(
    buf: &mut Vec<u8>,
    h: &HeaderView,
    vals: &[i64],
    index: &mut CuckooMap,
) -> Result<(), EncodingFull> {
    let capacity = 1usize << h.bits;
    let existing = entry_count(buf);
    let mut packed = Vec::with_capacity(h.block_size);
    let mut pending: Vec<i64> = Vec::new();
    let mut pending_map: HashMap<i64, u16> = HashMap::new();
    for &v in vals {
        let idx = if let Some(i) = index.get(v) {
            i
        } else if let Some(&i) = pending_map.get(&v) {
            i
        } else {
            let i = existing + pending.len();
            if i >= capacity {
                return Err(EncodingFull::DictionaryFull);
            }
            pending.push(v);
            pending_map.insert(v, i as u16);
            i as u16
        };
        packed.push(u64::from(idx));
    }
    // Commit: write the new entries, then the packed indexes.
    for (k, &v) in pending.iter().enumerate() {
        let i = existing + k;
        set_entry(buf, h, i, v);
        index.insert(v, i as u16);
    }
    header::put_u64(buf, OFF_ENTRY_COUNT, (existing + pending.len()) as u64);
    packed.resize(h.block_size, 0);
    bitpack::pack(&packed, h.bits, buf);
    Ok(())
}

/// Decode a full physical block.
pub fn decode_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<i64>) {
    let block_bytes = bitpack::packed_bytes(h.block_size, h.bits);
    let start = h.data_offset + block_idx * block_bytes;
    let mut packed = Vec::with_capacity(h.block_size);
    bitpack::unpack(&buf[start..], h.bits, h.block_size, &mut packed);
    out.extend(packed.iter().map(|&p| entry(buf, h, p as usize)));
}

/// Random access.
pub fn get(buf: &[u8], h: &HeaderView, idx: u64) -> i64 {
    let p = bitpack::get_one(&buf[h.data_offset..], h.bits, idx as usize);
    entry(buf, h, p as usize)
}

/// The packed index (not the value) at `idx` — used when converting a
/// dictionary *encoding* into dictionary *compression* (§3.4.3), where the
/// indexes become the new column data.
pub fn get_index(buf: &[u8], h: &HeaderView, idx: u64) -> u64 {
    bitpack::get_one(&buf[h.data_offset..], h.bits, idx as usize)
}

/// Decode a block of packed indexes (not values).
pub fn decode_index_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<u64>) {
    let block_bytes = bitpack::packed_bytes(h.block_size, h.bits);
    let start = h.data_offset + block_idx * block_bytes;
    bitpack::unpack(&buf[start..], h.bits, h.block_size, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodedStream, BLOCK_SIZE};

    #[test]
    fn entries_in_first_appearance_order() {
        let mut s = EncodedStream::new_dict(Width::W8, true, 4);
        s.append_block(&[30, 10, 20, 10, 30]).unwrap();
        assert_eq!(s.dict_entries().unwrap(), vec![30, 10, 20]);
    }

    #[test]
    fn failed_append_leaves_buffer_unchanged() {
        let mut s = EncodedStream::new_dict(Width::W8, true, 2);
        let block: Vec<i64> = (0..BLOCK_SIZE as i64).map(|i| i % 4).collect();
        s.append_block(&block).unwrap();
        let snapshot = s.as_bytes().to_vec();
        // 5 distinct values > 4 capacity: fails even though 0..3 exist.
        let bad: Vec<i64> = (0..BLOCK_SIZE as i64).map(|i| i % 5).collect();
        assert_eq!(s.append_block(&bad), Err(EncodingFull::DictionaryFull));
        assert_eq!(s.as_bytes(), &snapshot[..]);
        // And the stream still accepts valid appends afterwards.
        s.append_block(&block).unwrap();
        assert_eq!(s.len(), 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn negative_values_narrow_width() {
        let mut s = EncodedStream::new_dict(Width::W1, true, 3);
        s.append_block(&[-5, 3, -128, 127]).unwrap();
        assert_eq!(s.decode_all(), vec![-5, 3, -128, 127]);
    }

    #[test]
    fn index_stream_access() {
        let mut s = EncodedStream::new_dict(Width::W8, true, 4);
        s.append_block(&[100, 200, 100, 300]).unwrap();
        let h = s.header();
        assert_eq!(get_index(s.as_bytes(), &h, 0), 0);
        assert_eq!(get_index(s.as_bytes(), &h, 1), 1);
        assert_eq!(get_index(s.as_bytes(), &h, 2), 0);
        assert_eq!(get_index(s.as_bytes(), &h, 3), 2);
    }

    #[test]
    fn max_bits_dictionary() {
        let mut s = EncodedStream::new_dict(Width::W8, true, DICT_MAX_BITS);
        let vals: Vec<i64> = (0..(1i64 << DICT_MAX_BITS)).collect();
        for chunk in vals.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        assert_eq!(s.dict_entries().unwrap().len(), 1 << DICT_MAX_BITS);
        assert_eq!(s.decode_all(), vals);
    }
}

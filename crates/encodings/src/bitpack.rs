//! Bit packing of unsigned values.
//!
//! The encodings treat packed values as unsigned (paper §3.1). Values are
//! packed LSB-first into a little-endian byte stream. Because decompression
//! block sizes are multiples of 32, every block's packing ends on a byte
//! boundary: `32 · bits` is always divisible by 8.

/// Number of bytes needed to pack `count` values of `bits` bits each.
/// `count` must be a multiple of 32 (or the result rounds up to whole bytes,
/// which callers relying on block alignment must not depend on).
#[inline]
pub fn packed_bytes(count: usize, bits: u8) -> usize {
    (count * bits as usize).div_ceil(8)
}

/// Number of bits needed to represent every value in `[0, max]`.
#[inline]
pub fn bits_for_max(max: u64) -> u8 {
    (64 - max.leading_zeros()) as u8
}

/// Pack `values` (each strictly less than `2^bits`, except `bits == 64`)
/// into `out`, appending. `bits == 0` packs nothing.
pub fn pack(values: &[u64], bits: u8, out: &mut Vec<u8>) {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return;
    }
    if bits == 64 {
        out.reserve(values.len() * 8);
        for &v in values {
            out.extend_from_slice(&v.to_le_bytes());
        }
        return;
    }
    let mask = (1u64 << bits) - 1;
    // 128-bit accumulator: up to 63 leftover bits plus a 64-bit value.
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    out.reserve(packed_bytes(values.len(), bits));
    for &v in values {
        debug_assert!(v <= mask, "value {v} does not fit in {bits} bits");
        acc |= u128::from(v & mask) << acc_bits;
        acc_bits += u32::from(bits);
        while acc_bits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if acc_bits > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Unpack `count` values of `bits` bits each from `data` into `out`,
/// appending. `bits == 0` appends `count` zeros.
pub fn unpack(data: &[u8], bits: u8, count: usize, out: &mut Vec<u64>) {
    debug_assert!(bits <= 64);
    out.reserve(count);
    if bits == 0 {
        out.extend(std::iter::repeat_n(0, count));
        return;
    }
    if bits == 64 {
        debug_assert!(data.len() >= count * 8);
        for chunk in data[..count * 8].chunks_exact(8) {
            out.push(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        return;
    }
    let mask = (1u64 << bits) - 1;
    let mut acc: u128 = 0;
    let mut acc_bits: u32 = 0;
    let mut bytes = data.iter();
    for _ in 0..count {
        while acc_bits < u32::from(bits) {
            let b = *bytes.next().expect("bitpack underflow");
            acc |= u128::from(b) << acc_bits;
            acc_bits += 8;
        }
        out.push((acc as u64) & mask);
        acc >>= bits;
        acc_bits -= u32::from(bits);
    }
}

/// Read the single value at index `idx` from a packed stream without
/// unpacking its neighbours. Used for random access (`get`).
pub fn get_one(data: &[u8], bits: u8, idx: usize) -> u64 {
    debug_assert!(bits <= 64);
    if bits == 0 {
        return 0;
    }
    let bit_pos = idx * bits as usize;
    let byte_pos = bit_pos / 8;
    let shift = (bit_pos % 8) as u32;
    // Gather up to 9 bytes covering the value (bits ≤ 64 may straddle 9).
    let mut acc: u128 = 0;
    let end = (bit_pos + bits as usize).div_ceil(8).min(data.len());
    for (i, &b) in data[byte_pos..end].iter().enumerate() {
        acc |= u128::from(b) << (8 * i);
    }
    let mask: u128 = if bits == 64 {
        u64::MAX as u128
    } else {
        (1u128 << bits) - 1
    };
    ((acc >> shift) & mask) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u64], bits: u8) {
        let mut packed = Vec::new();
        pack(values, bits, &mut packed);
        assert_eq!(packed.len(), packed_bytes(values.len(), bits));
        let mut out = Vec::new();
        unpack(&packed, bits, values.len(), &mut out);
        assert_eq!(out, values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(get_one(&packed, bits, i), v, "bits={bits} idx={i}");
        }
    }

    #[test]
    fn roundtrip_all_bit_widths() {
        for bits in 1..=64u8 {
            let max = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            let values: Vec<u64> = (0..64u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & max)
                .collect();
            roundtrip(&values, bits);
        }
    }

    #[test]
    fn zero_bits_pack_nothing() {
        let mut packed = Vec::new();
        pack(&[0, 0, 0], 0, &mut packed);
        assert!(packed.is_empty());
        let mut out = Vec::new();
        unpack(&[], 0, 5, &mut out);
        assert_eq!(out, vec![0; 5]);
        assert_eq!(get_one(&[], 0, 3), 0);
    }

    #[test]
    fn block_of_32_is_byte_aligned() {
        for bits in 1..=64u8 {
            assert_eq!((32 * bits as usize) % 8, 0);
            let values = vec![0u64; 32];
            let mut packed = Vec::new();
            pack(&values, bits, &mut packed);
            assert_eq!(packed.len(), 32 * bits as usize / 8);
        }
    }

    #[test]
    fn bits_for_max_boundaries() {
        assert_eq!(bits_for_max(0), 0);
        assert_eq!(bits_for_max(1), 1);
        assert_eq!(bits_for_max(2), 2);
        assert_eq!(bits_for_max(255), 8);
        assert_eq!(bits_for_max(256), 9);
        assert_eq!(bits_for_max(u64::MAX), 64);
    }

    #[test]
    fn boundary_values() {
        roundtrip(&[0, 1, 0, 1], 1);
        roundtrip(&[(1 << 15) - 1, 0, 12345], 15);
        roundtrip(&[u64::MAX, 0, u64::MAX / 2], 64);
    }

    #[test]
    fn get_one_at_straddling_positions() {
        // 7-bit values straddle byte boundaries in every possible phase.
        let values: Vec<u64> = (0..128).map(|i| i % 128).collect();
        roundtrip(&values, 7);
    }
}

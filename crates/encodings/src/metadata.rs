//! Extracted column metadata (paper §3.4.2).
//!
//! The encoding statistics cheaply yield properties of the underlying
//! data: sortedness (delta encoding with non-negative minimum delta),
//! density and uniqueness (affine with delta 1 — the fetch-join enabler),
//! the domain cardinality, the minimum and maximum value, and — because
//! the TDE uses sentinel values for NULL — whether the column contains
//! NULLs. Downstream operators use these for tactical optimizations and
//! Tableau itself uses them to drive UI choices.

use crate::manipulate;
use crate::stats::ColumnStats;
use crate::EncodedStream;
use tde_types::sentinel::NULL_I64;
use tde_types::Width;

/// Tri-state knowledge about a column property: metadata is *extracted*, so
/// a property can be known-true, known-false, or simply unknown (the
/// encodings-off case, paper Fig 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Knowledge {
    /// Nothing is known.
    #[default]
    Unknown,
    /// The property is known to hold.
    True,
    /// The property is known not to hold.
    False,
}

impl Knowledge {
    /// Known (in either direction)?
    pub fn is_known(self) -> bool {
        self != Knowledge::Unknown
    }

    /// Known to be true?
    pub fn is_true(self) -> bool {
        self == Knowledge::True
    }

    /// From a definite boolean.
    pub fn from_bool(b: bool) -> Knowledge {
        if b {
            Knowledge::True
        } else {
            Knowledge::False
        }
    }
}

/// Metadata describing one column, consumed by the tactical optimizer
/// (fetch-join detection, hash algorithm choice, ordered aggregation) and
/// reportable to the client.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnMetadata {
    /// Sorted ascending.
    pub sorted_asc: Knowledge,
    /// Dense: the values form a contiguous integer range.
    pub dense: Knowledge,
    /// Unique: no value appears twice.
    pub unique: Knowledge,
    /// Minimum value (sentinels excluded).
    pub min: Option<i64>,
    /// Maximum value.
    pub max: Option<i64>,
    /// Domain cardinality.
    pub cardinality: Option<u64>,
    /// Whether NULLs are present.
    pub has_nulls: Knowledge,
    /// For string columns: whether the heap is sorted, making tokens
    /// directly comparable (paper §2.3.4, §3.4.3).
    pub sorted_heap_tokens: Knowledge,
    /// Narrowest width known to hold every value.
    pub width: Width,
}

impl ColumnMetadata {
    /// Metadata with nothing known, at the default 8-byte width.
    pub fn unknown() -> ColumnMetadata {
        ColumnMetadata {
            width: Width::W8,
            ..Default::default()
        }
    }

    /// Derive full metadata from encoding statistics (the encodings-on
    /// path of Fig 7).
    pub fn from_stats(stats: &ColumnStats, width: Width) -> ColumnMetadata {
        if stats.count == 0 {
            return ColumnMetadata {
                width,
                ..Default::default()
            };
        }
        let dense_unique = stats.is_dense_unique();
        let unique = if dense_unique {
            Knowledge::True
        } else if let Some(card) = stats.cardinality() {
            Knowledge::from_bool(card == stats.count)
        } else {
            Knowledge::Unknown
        };
        ColumnMetadata {
            sorted_asc: Knowledge::from_bool(stats.is_sorted_asc()),
            dense: Knowledge::from_bool(dense_unique),
            unique,
            min: Some(stats.min),
            max: Some(stats.max),
            cardinality: stats.cardinality(),
            has_nulls: Knowledge::from_bool(stats.has_nulls()),
            sorted_heap_tokens: Knowledge::Unknown,
            width,
        }
    }

    /// Derive what metadata the stream *header* alone proves — what a
    /// reader can recover from a stored column without its load-time
    /// statistics.
    pub fn from_stream_header(stream: &EncodedStream) -> ColumnMetadata {
        let mut md = ColumnMetadata::unknown();
        md.width = stream.width();
        if manipulate::header_proves_sorted(stream) {
            md.sorted_asc = Knowledge::True;
        }
        if manipulate::header_proves_dense_unique(stream) {
            md.dense = Knowledge::True;
            md.unique = Knowledge::True;
        }
        if let Some((lo, hi)) = manipulate::header_envelope(stream) {
            // The FoR envelope is an outer bound, still valid as min/max
            // bounds for pruning (not as exact statistics).
            md.min = Some(lo);
            md.max = Some(hi);
            if lo > NULL_I64 {
                md.has_nulls = Knowledge::False;
            }
        }
        if let Some(entries) = stream.dict_entries() {
            md.cardinality = Some(entries.len() as u64);
        }
        md
    }

    /// How many properties were detected — the quantity Fig 7 plots. A
    /// property counts when it is known (min/max/cardinality present,
    /// boolean properties known either way).
    pub fn detected_count(&self) -> usize {
        usize::from(self.sorted_asc.is_known())
            + usize::from(self.dense.is_known())
            + usize::from(self.unique.is_known())
            + usize::from(self.min.is_some())
            + usize::from(self.max.is_some())
            + usize::from(self.cardinality.is_some())
            + usize::from(self.has_nulls.is_known())
    }

    /// Merge another source of knowledge (e.g. accelerator statistics on
    /// top of header-derived facts), preferring already-known values.
    pub fn merge(&mut self, other: &ColumnMetadata) {
        if !self.sorted_asc.is_known() {
            self.sorted_asc = other.sorted_asc;
        }
        if !self.dense.is_known() {
            self.dense = other.dense;
        }
        if !self.unique.is_known() {
            self.unique = other.unique;
        }
        if self.min.is_none() {
            self.min = other.min;
        }
        if self.max.is_none() {
            self.max = other.max;
        }
        if self.cardinality.is_none() {
            self.cardinality = other.cardinality;
        }
        if !self.has_nulls.is_known() {
            self.has_nulls = other.has_nulls;
        }
        if !self.sorted_heap_tokens.is_known() {
            self.sorted_heap_tokens = other.sorted_heap_tokens;
        }
        self.width = self.width.min(other.width);
    }

    /// Re-assert the dense property over a filtered contiguous sub-range
    /// (paper §3.4.2: a range filter on a dense date dictionary leaves a
    /// contiguous sub-range, re-enabling fetch joins).
    pub fn reassert_dense(&mut self) {
        self.dense = Knowledge::True;
        self.unique = Knowledge::True;
        self.sorted_asc = Knowledge::True;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::encode_all;

    #[test]
    fn full_extraction_from_stats() {
        let vals: Vec<i64> = (10..5010).collect();
        let mut stats = ColumnStats::new();
        stats.update(&vals);
        let md = ColumnMetadata::from_stats(&stats, Width::W2);
        assert!(md.sorted_asc.is_true());
        assert!(md.dense.is_true());
        assert!(md.unique.is_true());
        assert_eq!(md.min, Some(10));
        assert_eq!(md.max, Some(5009));
        assert_eq!(md.cardinality, Some(5000));
        assert_eq!(md.has_nulls, Knowledge::False);
        assert_eq!(md.detected_count(), 7);
    }

    #[test]
    fn unknown_metadata_detects_nothing() {
        assert_eq!(ColumnMetadata::unknown().detected_count(), 0);
    }

    #[test]
    fn unsorted_column_is_known_unsorted() {
        let mut stats = ColumnStats::new();
        stats.update(&[3, 1, 2]);
        let md = ColumnMetadata::from_stats(&stats, Width::W8);
        assert_eq!(md.sorted_asc, Knowledge::False);
        assert!(md.sorted_asc.is_known()); // known-false still counts
    }

    #[test]
    fn header_derivation_affine() {
        let vals: Vec<i64> = (1..=1000).collect();
        let r = encode_all(&vals, Width::W8, true);
        let md = ColumnMetadata::from_stream_header(&r.stream);
        assert!(md.sorted_asc.is_true());
        assert!(md.dense.is_true());
        assert!(md.unique.is_true());
        assert_eq!(md.min, Some(1));
        assert_eq!(md.max, Some(1000));
        assert_eq!(md.has_nulls, Knowledge::False);
    }

    #[test]
    fn header_derivation_dict_cardinality() {
        let vals: Vec<i64> = (0..4000).map(|i| (i % 12) * 1_000_000).collect();
        let r = encode_all(&vals, Width::W8, true);
        if r.stream.algorithm() == crate::Algorithm::Dictionary {
            let md = ColumnMetadata::from_stream_header(&r.stream);
            assert_eq!(md.cardinality, Some(12));
        }
    }

    #[test]
    fn merge_prefers_existing() {
        let mut a = ColumnMetadata::unknown();
        a.min = Some(5);
        let mut b = ColumnMetadata::unknown();
        b.min = Some(-100);
        b.max = Some(10);
        b.sorted_asc = Knowledge::True;
        a.merge(&b);
        assert_eq!(a.min, Some(5));
        assert_eq!(a.max, Some(10));
        assert!(a.sorted_asc.is_true());
    }

    #[test]
    fn nulls_detected_via_sentinel_minimum() {
        let mut stats = ColumnStats::new();
        stats.update(&[NULL_I64, 5, 10]);
        let md = ColumnMetadata::from_stats(&stats, Width::W8);
        assert!(md.has_nulls.is_true());
    }
}

//! Delta encoding (paper §3.1.2).
//!
//! The header holds the 8-byte minimum delta value. Each decompression
//! block starts with the running total for that block (its first value, as
//! an 8-byte integer) so the stream supports random as well as sequential
//! access. Within a block, packed value `i` is
//! `value[i] - value[i-1] - min_delta` (and packed value 0 is always zero,
//! the first value being carried by the block header).
//!
//! A non-negative minimum delta in the header proves the column is sorted —
//! the sortedness metadata extraction of §3.4.2.

use crate::bitpack;
use crate::header::{self, HeaderView};
use crate::{Algorithm, EncodingFull};
use tde_types::Width;

/// Offset of the minimum delta within the header.
pub const OFF_MIN_DELTA: usize = header::COMMON_LEN;

/// Create an empty delta stream buffer.
pub fn new_stream(
    width: Width,
    block_size: usize,
    signed: bool,
    min_delta: i64,
    bits: u8,
) -> Vec<u8> {
    let mut buf = header::make_common(Algorithm::Delta, width, bits, block_size, signed, 8);
    header::put_i64(&mut buf, OFF_MIN_DELTA, min_delta);
    buf
}

/// The minimum delta, read from the header.
pub fn min_delta(buf: &[u8]) -> i64 {
    header::get_i64(buf, OFF_MIN_DELTA)
}

/// Bytes per physical block: 8-byte base + packed deltas.
#[inline]
pub fn block_bytes(h: &HeaderView) -> usize {
    8 + bitpack::packed_bytes(h.block_size, h.bits)
}

/// Append one block. Fails without modifying the buffer if any
/// within-block delta falls outside `[min_delta, min_delta + 2^bits)`.
pub fn append_block(buf: &mut Vec<u8>, h: &HeaderView, vals: &[i64]) -> Result<(), EncodingFull> {
    let md = min_delta(buf);
    let limit = 1i128 << h.bits;
    let mut packed = Vec::with_capacity(h.block_size);
    packed.push(0u64);
    for w in vals.windows(2) {
        let d = (w[1] as i128) - (w[0] as i128) - (md as i128);
        if d < 0 || d >= limit {
            return Err(EncodingFull::ValueOutOfRange);
        }
        packed.push(d as u64);
    }
    packed.resize(h.block_size, 0);
    buf.reserve(block_bytes(h));
    buf.extend_from_slice(&vals[0].to_le_bytes());
    bitpack::pack(&packed, h.bits, buf);
    Ok(())
}

/// Decode a full physical block.
pub fn decode_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<i64>) {
    let md = min_delta(buf);
    let start = h.data_offset + block_idx * block_bytes(h);
    let base = header::get_i64(buf, start);
    let mut packed = Vec::with_capacity(h.block_size);
    bitpack::unpack(&buf[start + 8..], h.bits, h.block_size, &mut packed);
    let mut v = base;
    out.push(v);
    for &p in &packed[1..] {
        v = v.wrapping_add(md).wrapping_add(p as i64);
        out.push(v);
    }
}

/// Random access: jump to the block base, then accumulate within the block.
pub fn get(buf: &[u8], h: &HeaderView, idx: u64) -> i64 {
    let md = min_delta(buf);
    let block_idx = idx as usize / h.block_size;
    let within = idx as usize % h.block_size;
    let start = h.data_offset + block_idx * block_bytes(h);
    let mut v = header::get_i64(buf, start);
    let packed = &buf[start + 8..];
    for i in 1..=within {
        let p = bitpack::get_one(packed, h.bits, i);
        v = v.wrapping_add(md).wrapping_add(p as i64);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodedStream, BLOCK_SIZE};

    #[test]
    fn descending_column_uses_negative_min_delta() {
        let data: Vec<i64> = (0..2000).map(|i| 10_000 - i * 4).collect();
        let mut s = EncodedStream::new_delta(Width::W8, true, -4, 0);
        for c in data.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        assert_eq!(s.decode_all(), data);
    }

    #[test]
    fn rejects_delta_out_of_range() {
        let mut s = EncodedStream::new_delta(Width::W8, true, 1, 2);
        // deltas must be in [1, 5): 1+2^2
        assert_eq!(s.append_block(&[0, 5]), Err(EncodingFull::ValueOutOfRange));
        assert_eq!(s.append_block(&[0, 0]), Err(EncodingFull::ValueOutOfRange));
        s.append_block(&[0, 4, 5, 9]).unwrap();
        assert_eq!(s.decode_all(), vec![0, 4, 5, 9]);
    }

    #[test]
    fn sortedness_visible_in_header() {
        let s = EncodedStream::new_delta(Width::W8, true, 0, 5);
        assert!(min_delta(s.as_bytes()) >= 0);
    }

    #[test]
    fn cross_block_deltas_do_not_constrain() {
        // Block boundaries reset via the stored base, so a big jump
        // *between* blocks is fine even when bits are small.
        let mut a: Vec<i64> = (0..BLOCK_SIZE as i64).collect();
        let b: Vec<i64> = (0..BLOCK_SIZE as i64).map(|i| 1_000_000 + i).collect();
        let mut s = EncodedStream::new_delta(Width::W8, true, 1, 0);
        s.append_block(&a).unwrap();
        s.append_block(&b).unwrap();
        a.extend_from_slice(&b);
        assert_eq!(s.decode_all(), a);
        assert_eq!(s.get(BLOCK_SIZE as u64), 1_000_000);
    }
}

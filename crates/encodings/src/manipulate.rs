//! Encoding manipulations (paper §3.4).
//!
//! Once a column is encoded, a handful of fast header edits change the
//! semantics of the entire column independent of its row count:
//!
//! * **Type narrowing** (§3.4.1): frame-of-reference, dictionary and affine
//!   headers bound the value envelope, so the width field can be reduced in
//!   O(1) (FoR, affine) or O(2^bits) (dictionary — the entries are
//!   rewritten in place; the offset to the bit-packed data is stored in the
//!   header, so the packing itself never moves).
//! * **Run-length decomposition** (§3.4.1): an RLE column splits into a
//!   value stream and a count stream; the value stream can be narrowed or
//!   dictionary-compressed and a new RLE stream rebuilt with the original
//!   counts — all in time proportional to the number of *runs*.
//! * **Dictionary remapping** (§3.4.3): replacing the entry table (e.g.
//!   with tokens into a freshly sorted heap) takes O(2^bits) and leaves the
//!   packed indexes untouched, optimizing a string column in time
//!   proportional to its domain, never its rows.

use crate::header;
use crate::{affine, dict, frame, rle, Algorithm, EncodedStream};
use tde_types::Width;

/// The value envelope `[lo, hi]` that the *header alone* guarantees, when
/// the encoding provides one. For frame-of-reference the envelope can be
/// wider than the actual data (paper §3.4.3); for affine and dictionary it
/// is exact.
pub fn header_envelope(stream: &EncodedStream) -> Option<(i64, i64)> {
    let h = stream.header();
    let buf = stream.as_bytes();
    match h.algorithm {
        Algorithm::FrameOfReference => {
            let lo = frame::frame_value(buf);
            let span = if h.bits >= 64 {
                return None; // envelope covers (almost) everything
            } else {
                (1i64 << h.bits) - 1
            };
            Some((lo, lo.checked_add(span)?))
        }
        Algorithm::Affine => {
            if h.logical_size == 0 {
                return None;
            }
            let b = affine::base(buf);
            let last = b.checked_add(affine::delta(buf).checked_mul(h.logical_size as i64 - 1)?)?;
            Some((b.min(last), b.max(last)))
        }
        Algorithm::Dictionary => {
            let n = dict::entry_count(buf);
            if n == 0 {
                return None;
            }
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for i in 0..n {
                let e = dict::entry(buf, &h, i);
                lo = lo.min(e);
                hi = hi.max(e);
            }
            Some((lo, hi))
        }
        // Delta embeds running totals in each block and run-length holds
        // values inside each pair — no cheap envelope (paper §3.4.1).
        Algorithm::Delta | Algorithm::RunLength | Algorithm::None => None,
    }
}

/// The narrowest width that can represent the stream's header envelope,
/// reserving the NULL sentinel slot for signed streams. Returns the current
/// width when the encoding exposes no envelope.
pub fn narrowable_width(stream: &EncodedStream) -> Width {
    let h = stream.header();
    match header_envelope(stream) {
        None => h.width,
        Some((lo, hi)) => {
            let w = if h.signed {
                Width::for_signed_range(lo, hi, true)
            } else {
                Width::for_unsigned_max(hi.max(0) as u64)
            };
            w.min(h.width)
        }
    }
}

/// Narrow the stream's element width in place (paper §3.4.1). Returns the
/// new width. O(1) for frame-of-reference and affine; O(2^bits) for
/// dictionary (entries are rewritten; the data offset does not change, so
/// the bit-packed body is untouched). A no-op for other encodings.
pub fn narrow(stream: &mut EncodedStream) -> Width {
    let h = stream.header();
    let target = narrowable_width(stream);
    if target >= h.width {
        return h.width;
    }
    if h.algorithm == Algorithm::Dictionary {
        // Rewrite the entries at the narrower width, front to back (safe:
        // new slots never overlap not-yet-read old slots because the new
        // width is strictly smaller).
        let n = dict::entry_count(stream.as_bytes());
        let entries: Vec<i64> = (0..n)
            .map(|i| dict::entry(stream.as_bytes(), &h, i))
            .collect();
        stream.buf[header::OFF_WIDTH] = target.bytes() as u8;
        let nh = stream.header();
        for (i, &e) in entries.iter().enumerate() {
            dict::set_entry(&mut stream.buf, &nh, i, e);
        }
    } else {
        stream.buf[header::OFF_WIDTH] = target.bytes() as u8;
    }
    target
}

/// Force a stream's width field (used after an external proof that values
/// fit, e.g. stats-driven narrowing of a metadata-only width).
pub fn set_width(stream: &mut EncodedStream, width: Width) {
    let h = stream.header();
    assert!(
        matches!(
            h.algorithm,
            Algorithm::FrameOfReference | Algorithm::Affine | Algorithm::Delta
        ),
        "width is structural for {} streams",
        h.algorithm
    );
    stream.buf[header::OFF_WIDTH] = width.bytes() as u8;
}

/// Replace the entry table of a dictionary-encoded stream (paper §3.4.3):
/// entry `i` becomes `new_entries[i]`. The packed indexes — and therefore
/// every row of the column — are untouched; cost is O(2^bits).
pub fn remap_dict_entries(stream: &mut EncodedStream, new_entries: &[i64]) {
    let h = stream.header();
    assert_eq!(
        h.algorithm,
        Algorithm::Dictionary,
        "remap on non-dictionary stream"
    );
    assert_eq!(
        new_entries.len(),
        dict::entry_count(stream.as_bytes()),
        "entry count mismatch"
    );
    for (i, &e) in new_entries.iter().enumerate() {
        dict::set_entry(&mut stream.buf, &h, i, e);
    }
    stream.dict_index = None; // transient lookup no longer matches
}

/// Decompose a run-length stream into its value and count streams
/// (paper §3.4.1). Cost is proportional to the number of runs.
pub fn rle_decompose(stream: &EncodedStream) -> (Vec<i64>, Vec<u64>) {
    let runs = stream
        .rle_run_iter()
        .expect("rle_decompose on non-RLE stream");
    let mut values = Vec::with_capacity(runs.len());
    let mut counts = Vec::with_capacity(runs.len());
    for (v, c) in runs {
        values.push(v);
        counts.push(c);
    }
    (values, counts)
}

/// Rebuild a run-length stream from (possibly transformed) values and the
/// original counts, choosing minimal field widths. Cost is proportional to
/// the number of runs, not rows.
pub fn rle_rebuild(values: &[i64], counts: &[u64], signed: bool) -> EncodedStream {
    assert_eq!(values.len(), counts.len());
    let (mut lo, mut hi) = (0i64, 0i64);
    let mut max_count = 1u64;
    for (&v, &c) in values.iter().zip(counts) {
        lo = lo.min(v);
        hi = hi.max(v);
        max_count = max_count.max(c);
    }
    let vw = if signed {
        Width::for_signed_range(lo, hi, false)
    } else {
        Width::for_unsigned_max(hi.max(0) as u64)
    };
    let cw = Width::for_unsigned_max(max_count);
    let elem = vw; // narrow the element width along with the value field
    let mut buf = rle::new_stream(elem, crate::BLOCK_SIZE, signed, cw, vw);
    let mut logical = 0u64;
    for (&v, &c) in values.iter().zip(counts) {
        // Split runs longer than the count field can carry.
        let cap = if cw == Width::W8 {
            u64::MAX
        } else {
            (1u64 << cw.bits()) - 1
        };
        let mut remaining = c;
        while remaining > 0 {
            let n = remaining.min(cap);
            let off = buf.len();
            buf.resize(off + cw.bytes() + vw.bytes(), 0);
            header::put_fixed(&mut buf, off, cw, n as i64);
            header::put_fixed(&mut buf, off + cw.bytes(), vw, v);
            remaining -= n;
        }
        logical += c;
    }
    header::put_u64(&mut buf, header::OFF_LOGICAL_SIZE, logical);
    EncodedStream::from_buf(buf)
}

/// Whether the header proves the stream is sorted ascending: a delta
/// stream with a non-negative minimum delta, or an affine stream with a
/// non-negative delta (paper §3.4.2).
pub fn header_proves_sorted(stream: &EncodedStream) -> bool {
    let h = stream.header();
    let buf = stream.as_bytes();
    match h.algorithm {
        Algorithm::Delta => crate::delta::min_delta(buf) >= 0,
        Algorithm::Affine => affine::delta(buf) >= 0,
        _ => false,
    }
}

/// Whether the header proves the stream is dense and unique — an affine
/// stream with delta exactly 1 (paper §3.4.2, the fetch-join enabler).
pub fn header_proves_dense_unique(stream: &EncodedStream) -> bool {
    let h = stream.header();
    h.algorithm == Algorithm::Affine && affine::delta(stream.as_bytes()) == 1
}

/// Check whether `HeaderView` widths changed without touching the packed
/// body: returns the byte range of the packed data for integrity tests.
pub fn packed_body(stream: &EncodedStream) -> &[u8] {
    let h = stream.header();
    &stream.as_bytes()[h.data_offset..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::encode_all;
    use crate::BLOCK_SIZE;

    #[test]
    fn narrow_frame_is_o1_and_preserves_body() {
        // A large column whose values fit in 2 bytes once the frame is
        // accounted for.
        let vals: Vec<i64> = (0..200_000).map(|i| 1_000_000 + (i % 1000)).collect();
        let mut s = EncodedStream::new_frame(Width::W8, true, 1_000_000, 10);
        for c in vals.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        let body_before = packed_body(&s).to_vec();
        let w = narrow(&mut s);
        // Envelope is [1_000_000, 1_001_023]: needs 4 bytes signed.
        assert_eq!(w, Width::W4);
        assert_eq!(packed_body(&s), &body_before[..]);
        assert_eq!(s.decode_all(), vals);
    }

    #[test]
    fn narrow_frame_to_one_byte() {
        let vals: Vec<i64> = (0..5000).map(|i| 50 + (i % 20)).collect();
        let mut s = EncodedStream::new_frame(Width::W8, true, 50, 5);
        for c in vals.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        assert_eq!(narrow(&mut s), Width::W1);
        assert_eq!(s.width(), Width::W1);
        assert_eq!(s.decode_all(), vals);
    }

    #[test]
    fn narrow_respects_sentinel_reservation() {
        // Envelope [-128, 0]: -128 is the W1 NULL sentinel, so the column
        // must stay at W2.
        let mut s = EncodedStream::new_frame(Width::W8, true, -128, 8);
        s.append_block(&[-128, 0]).unwrap();
        assert_eq!(narrow(&mut s), Width::W2);
    }

    #[test]
    fn narrow_affine() {
        let vals: Vec<i64> = (0..100).collect();
        let mut s = EncodedStream::new_affine(Width::W8, true, 0, 1);
        s.append_block(&vals).unwrap();
        assert_eq!(narrow(&mut s), Width::W1);
        assert_eq!(s.decode_all(), vals);
    }

    #[test]
    fn narrow_dict_rewrites_entries_only() {
        let vals: Vec<i64> = (0..3000).map(|i| (i % 7) * 10).collect();
        let mut s = EncodedStream::new_dict(Width::W8, true, 3);
        for c in vals.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        let body_before = packed_body(&s).to_vec();
        assert_eq!(narrow(&mut s), Width::W1);
        assert_eq!(packed_body(&s), &body_before[..]);
        assert_eq!(s.decode_all(), vals);
        assert_eq!(s.dict_entries().unwrap(), vec![0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn narrow_is_noop_for_delta_and_rle() {
        let vals: Vec<i64> = (0..100).map(|i| i * 3).collect();
        let r = encode_all(&vals, Width::W8, true);
        if r.stream.algorithm() == Algorithm::Delta {
            let mut s = r.stream;
            assert_eq!(narrow(&mut s), Width::W8);
        }
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W2, Width::W1);
        s.append_block(&[1, 1, 1, 2]).unwrap();
        assert_eq!(narrow(&mut s), Width::W8);
    }

    #[test]
    fn envelope_for_can_exceed_actual_values() {
        // FoR envelope is the representable range, not the observed one.
        let mut s = EncodedStream::new_frame(Width::W8, true, 0, 8);
        s.append_block(&[5]).unwrap();
        assert_eq!(header_envelope(&s), Some((0, 255)));
    }

    #[test]
    fn dict_remap_changes_values_without_touching_rows() {
        let mut s = EncodedStream::new_dict(Width::W8, true, 3);
        s.append_block(&[30, 10, 20, 10]).unwrap();
        let body_before = packed_body(&s).to_vec();
        // Entries are [30, 10, 20]; remap them to sorted ranks [2, 0, 1].
        remap_dict_entries(&mut s, &[2, 0, 1]);
        assert_eq!(packed_body(&s), &body_before[..]);
        assert_eq!(s.decode_all(), vec![2, 0, 1, 0]);
    }

    #[test]
    fn rle_decompose_and_rebuild_roundtrip() {
        let mut data = Vec::new();
        for v in [100i64, 500, 100, 900] {
            data.extend(std::iter::repeat_n(v, 700));
        }
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for c in data.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        let (values, counts) = rle_decompose(&s);
        assert_eq!(values, vec![100, 500, 100, 900]);
        assert_eq!(counts, vec![700, 700, 700, 700]);
        // Narrow the value stream (e.g. divide by 100) and rebuild.
        let narrowed: Vec<i64> = values.iter().map(|v| v / 100).collect();
        let rebuilt = rle_rebuild(&narrowed, &counts, true);
        assert_eq!(rebuilt.len(), 2800);
        assert_eq!(rebuilt.width(), Width::W1);
        let expected: Vec<i64> = data.iter().map(|v| v / 100).collect();
        assert_eq!(rebuilt.decode_all(), expected);
    }

    #[test]
    fn rle_rebuild_splits_long_runs() {
        let rebuilt = rle_rebuild(&[7], &[100_000], true);
        assert_eq!(rebuilt.len(), 100_000);
        let runs = rebuilt.rle_runs().unwrap();
        assert!(!runs.is_empty());
        assert_eq!(runs.iter().map(|r| r.1).sum::<u64>(), 100_000);
    }

    #[test]
    fn sortedness_proofs() {
        let sorted: Vec<i64> = (0..5000).map(|i| i * 2 + (i % 3)).collect();
        let r = encode_all(&sorted, Width::W8, true);
        if matches!(r.stream.algorithm(), Algorithm::Delta | Algorithm::Affine) {
            assert!(header_proves_sorted(&r.stream));
        }
        let ids: Vec<i64> = (1..=4000).collect();
        let r = encode_all(&ids, Width::W8, true);
        assert_eq!(r.stream.algorithm(), Algorithm::Affine);
        assert!(header_proves_dense_unique(&r.stream));
        assert!(header_proves_sorted(&r.stream));
    }
}

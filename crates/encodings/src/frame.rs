//! Frame-of-reference encoding (paper §3.1.1).
//!
//! The header holds an 8-byte frame value; the bit-packed values are added
//! to the frame to produce the uncompressed values. The frame plus the bit
//! width define the outer envelope of values present in the column, which
//! the narrowing manipulation (§3.4.1) and the FoR→dictionary conversion
//! (§3.4.3) read straight from the header.

use crate::bitpack;
use crate::header::{self, HeaderView};
use crate::{Algorithm, EncodingFull};
use tde_types::Width;

/// Offset of the frame value within the header.
pub const OFF_FRAME: usize = header::COMMON_LEN;

/// Create an empty frame-of-reference stream buffer.
pub fn new_stream(width: Width, block_size: usize, signed: bool, frame: i64, bits: u8) -> Vec<u8> {
    let mut buf = header::make_common(
        Algorithm::FrameOfReference,
        width,
        bits,
        block_size,
        signed,
        8,
    );
    header::put_i64(&mut buf, OFF_FRAME, frame);
    buf
}

/// The frame value, read from the header.
pub fn frame_value(buf: &[u8]) -> i64 {
    header::get_i64(buf, OFF_FRAME)
}

/// Compute the packed offset of `v` relative to `frame`, if it fits.
#[inline]
fn pack_one(v: i64, frame: i64, bits: u8) -> Result<u64, EncodingFull> {
    let off = (v as i128) - (frame as i128);
    let limit = 1i128 << bits;
    if off < 0 || off >= limit {
        return Err(EncodingFull::ValueOutOfRange);
    }
    Ok(off as u64)
}

/// Append one block. Fails without modifying the buffer if any value lies
/// outside `[frame, frame + 2^bits)`.
pub fn append_block(buf: &mut Vec<u8>, h: &HeaderView, vals: &[i64]) -> Result<(), EncodingFull> {
    let frame = frame_value(buf);
    let mut packed = Vec::with_capacity(h.block_size);
    for &v in vals {
        packed.push(pack_one(v, frame, h.bits)?);
    }
    packed.resize(h.block_size, 0); // pad with the frame value
    bitpack::pack(&packed, h.bits, buf);
    Ok(())
}

/// Decode a full physical block.
pub fn decode_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<i64>) {
    let frame = frame_value(buf);
    let block_bytes = bitpack::packed_bytes(h.block_size, h.bits);
    let start = h.data_offset + block_idx * block_bytes;
    let mut packed = Vec::with_capacity(h.block_size);
    bitpack::unpack(&buf[start..], h.bits, h.block_size, &mut packed);
    out.extend(packed.iter().map(|&p| frame.wrapping_add(p as i64)));
}

/// Random access.
pub fn get(buf: &[u8], h: &HeaderView, idx: u64) -> i64 {
    let frame = frame_value(buf);
    let p = bitpack::get_one(&buf[h.data_offset..], h.bits, idx as usize);
    frame.wrapping_add(p as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedStream;

    #[test]
    fn negative_frame() {
        let mut s = EncodedStream::new_frame(Width::W8, true, -1000, 11);
        let data: Vec<i64> = (0..100).map(|i| -1000 + i * 20).collect();
        s.append_block(&data).unwrap();
        assert_eq!(s.decode_all(), data);
    }

    #[test]
    fn frame_near_i64_min_does_not_overflow() {
        let frame = i64::MIN;
        let mut s = EncodedStream::new_frame(Width::W8, true, frame, 8);
        s.append_block(&[frame, frame + 255]).unwrap();
        assert_eq!(s.decode_all(), vec![frame, frame + 255]);
        // A value 2^8 above the frame is out of range.
        let mut s2 = EncodedStream::new_frame(Width::W8, true, frame, 8);
        assert_eq!(
            s2.append_block(&[frame + 256]),
            Err(EncodingFull::ValueOutOfRange)
        );
    }

    #[test]
    fn zero_bits_means_constant() {
        let mut s = EncodedStream::new_frame(Width::W8, true, 77, 0);
        s.append_block(&[77, 77, 77]).unwrap();
        assert_eq!(s.decode_all(), vec![77, 77, 77]);
        let mut s2 = EncodedStream::new_frame(Width::W8, true, 77, 0);
        assert_eq!(s2.append_block(&[78]), Err(EncodingFull::ValueOutOfRange));
    }

    #[test]
    fn physical_size_tracks_bits() {
        // 4-bit packing: one block of 1024 values = 512 bytes.
        let mut s = EncodedStream::new_frame(Width::W8, true, 0, 4);
        let block: Vec<i64> = (0..crate::BLOCK_SIZE as i64).map(|i| i % 16).collect();
        s.append_block(&block).unwrap();
        let h = s.header();
        assert_eq!(s.physical_size() - h.data_offset, crate::BLOCK_SIZE / 2);
    }
}

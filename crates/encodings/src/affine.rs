//! Affine encoding (paper §3.1.4).
//!
//! A simplified form of delta encoding where the bit width is zero —
//! equivalently, the delta is constant. Every value is computed as
//! `value = base + row * delta`, so the stream stores no packed data at
//! all: appends only advance the logical-size field.
//!
//! The header reserves 8 bytes for both the base and the delta even when
//! the actual values are narrower, which is what makes the O(1) narrowing
//! manipulation possible. An affine stream with `delta == 1` proves the
//! column is sorted, dense and unique — the property that enables fetch
//! joins downstream (§3.4.2).

use crate::header::{self, HeaderView};
use crate::{Algorithm, EncodingFull};
use tde_types::Width;

/// Offset of the base value within the header.
pub const OFF_BASE: usize = header::COMMON_LEN;

/// Offset of the per-row delta within the header.
pub const OFF_DELTA: usize = header::COMMON_LEN + 8;

/// Create an empty affine stream buffer.
pub fn new_stream(width: Width, block_size: usize, signed: bool, base: i64, delta: i64) -> Vec<u8> {
    let mut buf = header::make_common(Algorithm::Affine, width, 0, block_size, signed, 16);
    header::put_i64(&mut buf, OFF_BASE, base);
    header::put_i64(&mut buf, OFF_DELTA, delta);
    buf
}

/// The base value, read from the header.
pub fn base(buf: &[u8]) -> i64 {
    header::get_i64(buf, OFF_BASE)
}

/// The per-row delta, read from the header.
pub fn delta(buf: &[u8]) -> i64 {
    header::get_i64(buf, OFF_DELTA)
}

/// Append one block: verify each value continues the progression. The
/// buffer itself never grows (constant storage, paper §6.2).
pub fn append_block(buf: &mut [u8], h: &HeaderView, vals: &[i64]) -> Result<(), EncodingFull> {
    let b = base(buf);
    let d = delta(buf);
    let first_row = h.logical_size as i64;
    for (i, &v) in vals.iter().enumerate() {
        if v != b.wrapping_add((first_row + i as i64).wrapping_mul(d)) {
            return Err(EncodingFull::NotAffine);
        }
    }
    Ok(())
}

/// Decode a full physical block by evaluating the progression.
pub fn decode_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<i64>) {
    let b = base(buf);
    let d = delta(buf);
    let start = (block_idx * h.block_size) as i64;
    out.extend((0..h.block_size as i64).map(|i| b.wrapping_add((start + i).wrapping_mul(d))));
}

/// Random access is a single multiply-add.
pub fn get(buf: &[u8], _h: &HeaderView, idx: u64) -> i64 {
    base(buf).wrapping_add((idx as i64).wrapping_mul(delta(buf)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedStream;

    #[test]
    fn negative_delta() {
        let mut s = EncodedStream::new_affine(Width::W8, true, 100, -3);
        s.append_block(&[100, 97, 94, 91]).unwrap();
        assert_eq!(s.decode_all(), vec![100, 97, 94, 91]);
        assert_eq!(s.get(3), 91);
    }

    #[test]
    fn append_checks_continue_from_stream_length() {
        let mut s = EncodedStream::new_affine(Width::W8, true, 0, 2);
        s.append_block(&[0, 2, 4]).unwrap();
        // Affine streams never seal (no packed data), so the progression
        // check governs: the next value must be 6.
        assert_eq!(s.append_block(&[0]), Err(EncodingFull::NotAffine));
        s.append_block(&[6, 8]).unwrap();
        assert_eq!(s.decode_all(), vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn dense_unique_detection_fields() {
        let s = EncodedStream::new_affine(Width::W8, true, 1, 1);
        assert_eq!(base(s.as_bytes()), 1);
        assert_eq!(delta(s.as_bytes()), 1);
    }
}

//! The bit-packed stream header (paper §3.1, Fig 1).
//!
//! Byte layout (all fields little-endian):
//!
//! ```text
//! offset size field
//! 0      8    logical size (number of logical values; the physical packed
//!             data may cover more because streams hold whole blocks)
//! 8      8    offset to the bit-packed data (lets the header be resized
//!             without disturbing the packing)
//! 16     4    decompression block size (values per block, multiple of 32)
//! 20     1    encoding algorithm tag
//! 21     1    element width in bytes (1/2/4/8)
//! 22     1    number of packing bits
//! 23     1    flags (bit 0: values are signed)
//! 24     ..   encoding-specific header data
//! ```
//!
//! Encoding-specific trailers:
//!
//! * frame-of-reference: 8 bytes frame value (i64)
//! * delta: 8 bytes minimum delta value (i64)
//! * dictionary: 8 bytes entry count, then `2^bits` entry slots of
//!   `width` bytes each (room for the dictionary to grow to its limit)
//! * affine: 8 bytes base + 8 bytes delta (both reserved at full width
//!   even when the actual values are narrower)
//! * run-length: 1 byte count-field width + 1 byte value-field width,
//!   padded to 8; the "packed data" is the stream of (count, value) pairs

use crate::Algorithm;
use tde_types::Width;

/// Size of the common header prefix.
pub const COMMON_LEN: usize = 24;

/// Offsets of the common fields.
pub const OFF_LOGICAL_SIZE: usize = 0;
pub const OFF_DATA_OFFSET: usize = 8;
pub const OFF_BLOCK_SIZE: usize = 16;
pub const OFF_ALGORITHM: usize = 20;
pub const OFF_WIDTH: usize = 21;
pub const OFF_BITS: usize = 22;
pub const OFF_FLAGS: usize = 23;

/// Flag bit: the logical values are signed integers (sign-extend on decode
/// of raw/dictionary-entry bytes). Unset for heap tokens and dictionary
/// indexes, which are unsigned (paper §3.1).
pub const FLAG_SIGNED: u8 = 0b0000_0001;

/// Read a `u64` field.
#[inline]
pub fn get_u64(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Write a `u64` field.
#[inline]
pub fn put_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read an `i64` field.
#[inline]
pub fn get_i64(buf: &[u8], off: usize) -> i64 {
    i64::from_le_bytes(buf[off..off + 8].try_into().unwrap())
}

/// Write an `i64` field.
#[inline]
pub fn put_i64(buf: &mut [u8], off: usize, v: i64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Read a `u32` field.
#[inline]
pub fn get_u32(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().unwrap())
}

/// Write a `u32` field.
#[inline]
pub fn put_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

/// Write a fixed-width little-endian value of `width` bytes at `off`,
/// truncating the two's-complement representation.
#[inline]
pub fn put_fixed(buf: &mut [u8], off: usize, width: Width, v: i64) {
    let bytes = v.to_le_bytes();
    buf[off..off + width.bytes()].copy_from_slice(&bytes[..width.bytes()]);
}

/// Read a fixed-width little-endian value of `width` bytes at `off`,
/// sign-extending when `signed`.
#[inline]
pub fn get_fixed(buf: &[u8], off: usize, width: Width, signed: bool) -> i64 {
    let n = width.bytes();
    let mut bytes = [0u8; 8];
    bytes[..n].copy_from_slice(&buf[off..off + n]);
    let v = u64::from_le_bytes(bytes);
    if signed && n < 8 {
        let shift = 64 - width.bits();
        ((v << shift) as i64) >> shift
    } else {
        v as i64
    }
}

/// Build the common 24-byte header prefix.
pub fn make_common(
    algorithm: Algorithm,
    width: Width,
    bits: u8,
    block_size: usize,
    signed: bool,
    extra_header_len: usize,
) -> Vec<u8> {
    debug_assert!(
        block_size.is_multiple_of(32),
        "block size must be a multiple of 32"
    );
    let mut buf = vec![0u8; COMMON_LEN + extra_header_len];
    put_u64(&mut buf, OFF_LOGICAL_SIZE, 0);
    put_u64(
        &mut buf,
        OFF_DATA_OFFSET,
        (COMMON_LEN + extra_header_len) as u64,
    );
    put_u32(&mut buf, OFF_BLOCK_SIZE, block_size as u32);
    buf[OFF_ALGORITHM] = algorithm as u8;
    buf[OFF_WIDTH] = width.bytes() as u8;
    buf[OFF_BITS] = bits;
    buf[OFF_FLAGS] = if signed { FLAG_SIGNED } else { 0 };
    buf
}

/// Typed read-only view of a stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderView {
    /// Number of logical values in the stream.
    pub logical_size: u64,
    /// Byte offset of the packed data within the buffer.
    pub data_offset: usize,
    /// Values per decompression block.
    pub block_size: usize,
    /// The encoding algorithm.
    pub algorithm: Algorithm,
    /// Element width of the decoded stream.
    pub width: Width,
    /// Packing bits per value.
    pub bits: u8,
    /// Whether decoded values are signed.
    pub signed: bool,
}

impl HeaderView {
    /// Parse the common prefix of `buf`. Panics on corrupt headers — the
    /// engine only reads buffers it wrote; the single-file reader validates
    /// separately with [`HeaderView::try_parse`].
    pub fn parse(buf: &[u8]) -> HeaderView {
        HeaderView::try_parse(buf).expect("corrupt encoded stream header")
    }

    /// Fallible parse for untrusted input (e.g. files from disk).
    pub fn try_parse(buf: &[u8]) -> Option<HeaderView> {
        if buf.len() < COMMON_LEN {
            return None;
        }
        let algorithm = Algorithm::from_tag(buf[OFF_ALGORITHM])?;
        let width = Width::from_bytes(buf[OFF_WIDTH] as usize)?;
        let bits = buf[OFF_BITS];
        if bits > 64 {
            return None;
        }
        let data_offset = get_u64(buf, OFF_DATA_OFFSET) as usize;
        if data_offset > buf.len() || data_offset < COMMON_LEN {
            return None;
        }
        let block_size = get_u32(buf, OFF_BLOCK_SIZE) as usize;
        if block_size == 0 || !block_size.is_multiple_of(32) {
            return None;
        }
        Some(HeaderView {
            logical_size: get_u64(buf, OFF_LOGICAL_SIZE),
            data_offset,
            block_size,
            algorithm,
            width,
            bits,
            signed: buf[OFF_FLAGS] & FLAG_SIGNED != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_header_roundtrip() {
        let buf = make_common(Algorithm::Delta, Width::W4, 13, 1024, true, 8);
        let h = HeaderView::parse(&buf);
        assert_eq!(h.algorithm, Algorithm::Delta);
        assert_eq!(h.width, Width::W4);
        assert_eq!(h.bits, 13);
        assert_eq!(h.block_size, 1024);
        assert!(h.signed);
        assert_eq!(h.data_offset, 32);
        assert_eq!(h.logical_size, 0);
    }

    #[test]
    fn try_parse_rejects_garbage() {
        assert!(HeaderView::try_parse(&[0u8; 10]).is_none());
        let mut buf = make_common(Algorithm::None, Width::W8, 0, 1024, false, 0);
        buf[OFF_ALGORITHM] = 200;
        assert!(HeaderView::try_parse(&buf).is_none());
        let mut buf = make_common(Algorithm::None, Width::W8, 0, 1024, false, 0);
        buf[OFF_WIDTH] = 3;
        assert!(HeaderView::try_parse(&buf).is_none());
        let mut buf = make_common(Algorithm::None, Width::W8, 0, 1024, false, 0);
        put_u32(&mut buf, OFF_BLOCK_SIZE, 33); // not a multiple of 32
        assert!(HeaderView::try_parse(&buf).is_none());
    }

    #[test]
    fn fixed_width_signed_roundtrip() {
        let mut buf = vec![0u8; 8];
        for (w, v) in [
            (Width::W1, -5i64),
            (Width::W2, -300),
            (Width::W4, -70_000),
            (Width::W8, i64::MIN + 1),
        ] {
            put_fixed(&mut buf, 0, w, v);
            assert_eq!(get_fixed(&buf, 0, w, true), v);
        }
    }

    #[test]
    fn fixed_width_unsigned_roundtrip() {
        let mut buf = vec![0u8; 8];
        put_fixed(&mut buf, 0, Width::W1, 200);
        assert_eq!(get_fixed(&buf, 0, Width::W1, false), 200);
        // The same bytes sign-extend differently.
        assert_eq!(get_fixed(&buf, 0, Width::W1, true), 200 - 256);
    }
}

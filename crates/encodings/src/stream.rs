//! [`EncodedStream`]: a self-describing encoded column stream.
//!
//! Externally an encoding appears as a paged array of fixed-width values;
//! internally it is stored in a more compressed format (paper §2.3.2). The
//! stream is a single byte buffer — header plus complete decompression
//! blocks — so the single-file database writer can emit it verbatim, and
//! the header manipulations of §3.4 are literal byte edits on `buf`.
//!
//! Appends happen one block at a time (paper §3.2). A partial final block
//! is padded to a complete physical block (the logical-size header field
//! records the true length) and seals the stream.

use crate::cuckoo::CuckooMap;
use crate::header::{self, HeaderView};
use crate::{affine, delta, dict, frame, raw, rle};
use crate::{Algorithm, EncodingFull, BLOCK_SIZE};
use tde_types::Width;

/// An encoded column stream: header + packed blocks in one buffer.
#[derive(Debug, Clone)]
pub struct EncodedStream {
    pub(crate) buf: Vec<u8>,
    /// Rebuilt-on-demand builder state for dictionary appends.
    pub(crate) dict_index: Option<CuckooMap>,
    pub(crate) sealed: bool,
}

impl EncodedStream {
    /// Create an empty unencoded (raw) stream.
    pub fn new_raw(width: Width, signed: bool) -> EncodedStream {
        EncodedStream::from_buf(raw::new_stream(width, BLOCK_SIZE, signed))
    }

    /// Create an empty frame-of-reference stream. Values must satisfy
    /// `0 <= v - frame < 2^bits`.
    pub fn new_frame(width: Width, signed: bool, frame_value: i64, bits: u8) -> EncodedStream {
        EncodedStream::from_buf(frame::new_stream(
            width,
            BLOCK_SIZE,
            signed,
            frame_value,
            bits,
        ))
    }

    /// Create an empty delta stream. Successive deltas must satisfy
    /// `0 <= d - min_delta < 2^bits`.
    pub fn new_delta(width: Width, signed: bool, min_delta: i64, bits: u8) -> EncodedStream {
        EncodedStream::from_buf(delta::new_stream(
            width, BLOCK_SIZE, signed, min_delta, bits,
        ))
    }

    /// Create an empty dictionary stream with room for `2^bits` entries.
    pub fn new_dict(width: Width, signed: bool, bits: u8) -> EncodedStream {
        EncodedStream::from_buf(dict::new_stream(width, BLOCK_SIZE, signed, bits))
    }

    /// Create an empty affine stream: row `r` holds `base + r * delta`.
    pub fn new_affine(width: Width, signed: bool, base: i64, delta: i64) -> EncodedStream {
        EncodedStream::from_buf(affine::new_stream(width, BLOCK_SIZE, signed, base, delta))
    }

    /// Create an empty run-length stream with the given field widths.
    pub fn new_rle(
        width: Width,
        signed: bool,
        count_width: Width,
        value_width: Width,
    ) -> EncodedStream {
        EncodedStream::from_buf(rle::new_stream(
            width,
            BLOCK_SIZE,
            signed,
            count_width,
            value_width,
        ))
    }

    /// Wrap an existing buffer (e.g. read from a database file).
    pub fn from_buf(buf: Vec<u8>) -> EncodedStream {
        let h = HeaderView::parse(&buf);
        let pads_blocks = !matches!(h.algorithm, Algorithm::Affine | Algorithm::RunLength);
        let sealed = pads_blocks && !h.logical_size.is_multiple_of(h.block_size as u64);
        EncodedStream {
            buf,
            dict_index: None,
            sealed,
        }
    }

    /// The raw buffer, e.g. for writing to a database file.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Parsed header.
    pub fn header(&self) -> HeaderView {
        HeaderView::parse(&self.buf)
    }

    /// Number of logical values.
    pub fn len(&self) -> u64 {
        header::get_u64(&self.buf, header::OFF_LOGICAL_SIZE)
    }

    /// Whether the stream holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical size in bytes (header + packed blocks) — the number this
    /// stream contributes to the single database file (paper §2.3.3).
    pub fn physical_size(&self) -> usize {
        self.buf.len()
    }

    /// Logical (un-encoded) size in bytes: values × element width.
    pub fn logical_size(&self) -> u64 {
        self.len() * self.header().width.bytes() as u64
    }

    /// The encoding algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.header().algorithm
    }

    /// The element width.
    pub fn width(&self) -> Width {
        self.header().width
    }

    /// Number of decompression blocks currently stored.
    pub fn block_count(&self) -> usize {
        let h = self.header();
        (h.logical_size as usize).div_ceil(h.block_size)
    }

    /// Append one block of logical values. `vals.len()` must not exceed the
    /// block size; a short block seals the stream. On failure the stream is
    /// unchanged and the dynamic encoder may re-encode (paper §3.2).
    pub fn append_block(&mut self, vals: &[i64]) -> Result<(), EncodingFull> {
        if self.sealed {
            return Err(EncodingFull::Sealed);
        }
        let h = self.header();
        assert!(
            vals.len() <= h.block_size,
            "append_block got {} values for block size {}",
            vals.len(),
            h.block_size
        );
        if vals.is_empty() {
            return Ok(());
        }
        match h.algorithm {
            Algorithm::None => raw::append_block(&mut self.buf, &h, vals),
            Algorithm::FrameOfReference => frame::append_block(&mut self.buf, &h, vals)?,
            Algorithm::Delta => delta::append_block(&mut self.buf, &h, vals)?,
            Algorithm::Dictionary => {
                if self.dict_index.is_none() {
                    self.dict_index = Some(dict::rebuild_index(&self.buf, &h));
                }
                dict::append_block(&mut self.buf, &h, vals, self.dict_index.as_mut().unwrap())?
            }
            Algorithm::Affine => affine::append_block(&mut self.buf, &h, vals)?,
            Algorithm::RunLength => rle::append_block(&mut self.buf, &h, vals)?,
        }
        let new_len = h.logical_size + vals.len() as u64;
        header::put_u64(&mut self.buf, header::OFF_LOGICAL_SIZE, new_len);
        // Encodings with physical block padding cannot grow past a partial
        // block; affine (no packed data) and run-length (run pairs, not
        // blocks) keep accepting appends.
        let pads_blocks = !matches!(h.algorithm, Algorithm::Affine | Algorithm::RunLength);
        if vals.len() < h.block_size && pads_blocks {
            self.sealed = true;
        }
        Ok(())
    }

    /// Decode block `block_idx`, appending its logical values to `out`
    /// (the final block yields fewer than `block_size` values if the
    /// stream length is not a block multiple).
    pub fn decode_block(&self, block_idx: usize, out: &mut Vec<i64>) {
        let h = self.header();
        let start = block_idx * h.block_size;
        assert!(
            (start as u64) < h.logical_size,
            "block {block_idx} out of range"
        );
        let take = (h.logical_size as usize - start).min(h.block_size);
        let before = out.len();
        match h.algorithm {
            Algorithm::None => raw::decode_block(&self.buf, &h, block_idx, out),
            Algorithm::FrameOfReference => frame::decode_block(&self.buf, &h, block_idx, out),
            Algorithm::Delta => delta::decode_block(&self.buf, &h, block_idx, out),
            Algorithm::Dictionary => dict::decode_block(&self.buf, &h, block_idx, out),
            Algorithm::Affine => affine::decode_block(&self.buf, &h, block_idx, out),
            Algorithm::RunLength => rle::decode_block(&self.buf, &h, block_idx, out),
        }
        out.truncate(before + take);
    }

    /// Random access to one value. Cheap for every encoding except
    /// run-length, which scans its runs (paper §4.3).
    pub fn get(&self, idx: u64) -> i64 {
        let h = self.header();
        assert!(idx < h.logical_size, "index {idx} out of range");
        match h.algorithm {
            Algorithm::None => raw::get(&self.buf, &h, idx),
            Algorithm::FrameOfReference => frame::get(&self.buf, &h, idx),
            Algorithm::Delta => delta::get(&self.buf, &h, idx),
            Algorithm::Dictionary => dict::get(&self.buf, &h, idx),
            Algorithm::Affine => affine::get(&self.buf, &h, idx),
            Algorithm::RunLength => rle::get(&self.buf, &h, idx),
        }
    }

    /// Decode every logical value.
    pub fn decode_all(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len() as usize);
        for b in 0..self.block_count() {
            self.decode_block(b, &mut out);
        }
        out
    }

    /// The dictionary entries of a dictionary-encoded stream, in insertion
    /// order (which the sorted-heap manipulation permutes in place).
    pub fn dict_entries(&self) -> Option<Vec<i64>> {
        let h = self.header();
        if h.algorithm != Algorithm::Dictionary {
            return None;
        }
        Some(dict::entries(&self.buf, &h))
    }

    /// The (value, count) runs of a run-length stream, for building an
    /// IndexTable (paper §4.2.1).
    pub fn rle_runs(&self) -> Option<Vec<(i64, u64)>> {
        let h = self.header();
        if h.algorithm != Algorithm::RunLength {
            return None;
        }
        Some(rle::runs(&self.buf, &h))
    }

    /// Lazily iterate the (value, count) runs of a run-length stream —
    /// the allocation-free counterpart of [`EncodedStream::rle_runs`].
    pub fn rle_run_iter(&self) -> Option<rle::RunIter<'_>> {
        let h = self.header();
        if h.algorithm != Algorithm::RunLength {
            return None;
        }
        Some(rle::run_iter(&self.buf, &h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_types::Width;

    fn check_roundtrip(mut s: EncodedStream, data: &[i64]) {
        for chunk in data.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        assert_eq!(s.len(), data.len() as u64);
        assert_eq!(s.decode_all(), data);
        // Spot-check random access.
        let step = (data.len() / 7).max(1);
        for i in (0..data.len()).step_by(step) {
            assert_eq!(s.get(i as u64), data[i], "idx {i}");
        }
        if !data.is_empty() {
            assert_eq!(s.get(data.len() as u64 - 1), *data.last().unwrap());
        }
    }

    #[test]
    fn raw_roundtrip() {
        let data: Vec<i64> = (0..3000).map(|i| i * 7 - 100).collect();
        check_roundtrip(EncodedStream::new_raw(Width::W8, true), &data);
    }

    #[test]
    fn raw_narrow_width_signed() {
        let data: Vec<i64> = (-100..100).collect();
        check_roundtrip(EncodedStream::new_raw(Width::W1, true), &data);
    }

    #[test]
    fn frame_roundtrip() {
        let data: Vec<i64> = (0..2500).map(|i| 1000 + (i % 50)).collect();
        check_roundtrip(EncodedStream::new_frame(Width::W8, true, 1000, 6), &data);
    }

    #[test]
    fn frame_rejects_out_of_range() {
        let mut s = EncodedStream::new_frame(Width::W8, true, 0, 4);
        assert_eq!(s.append_block(&[16]), Err(EncodingFull::ValueOutOfRange));
        assert_eq!(s.append_block(&[-1]), Err(EncodingFull::ValueOutOfRange));
        assert_eq!(s.len(), 0); // unchanged after failure
        s.append_block(&[15, 0, 7]).unwrap();
        assert_eq!(s.decode_all(), vec![15, 0, 7]);
    }

    #[test]
    fn delta_roundtrip_sorted() {
        let data: Vec<i64> = (0..5000).map(|i| i * 3).collect();
        check_roundtrip(EncodedStream::new_delta(Width::W8, true, 3, 0), &data);
    }

    #[test]
    fn delta_roundtrip_jittered() {
        let data: Vec<i64> = (0..5000).map(|i| i * 3 + (i % 2)).collect();
        // deltas are in {2, 4}: min_delta 2, bits 2
        check_roundtrip(EncodedStream::new_delta(Width::W8, true, 2, 2), &data);
    }

    #[test]
    fn delta_block_boundary_random_access() {
        let data: Vec<i64> = (0..(BLOCK_SIZE as i64 * 3)).map(|i| i * 2).collect();
        let mut s = EncodedStream::new_delta(Width::W8, true, 2, 0);
        for chunk in data.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        // Access across the block boundary without decoding from the start.
        assert_eq!(s.get(BLOCK_SIZE as u64), data[BLOCK_SIZE]);
        assert_eq!(s.get(BLOCK_SIZE as u64 - 1), data[BLOCK_SIZE - 1]);
    }

    #[test]
    fn dict_roundtrip() {
        let data: Vec<i64> = (0..4000).map(|i| (i % 37) * 1_000_000).collect();
        check_roundtrip(EncodedStream::new_dict(Width::W8, true, 6), &data);
    }

    #[test]
    fn dict_full() {
        let mut s = EncodedStream::new_dict(Width::W8, true, 2); // 4 entries max
        let block: Vec<i64> = (0..BLOCK_SIZE as i64).map(|i| (i % 4) * 10).collect();
        s.append_block(&block).unwrap();
        assert_eq!(
            s.append_block(&vec![50; BLOCK_SIZE]),
            Err(EncodingFull::DictionaryFull)
        );
        s.append_block(&block).unwrap();
        // Sealed streams reject further appends.
        let mut s2 = EncodedStream::new_dict(Width::W8, true, 4);
        s2.append_block(&[1, 2]).unwrap(); // partial block seals
        assert_eq!(s2.append_block(&[3]), Err(EncodingFull::Sealed));
    }

    #[test]
    fn affine_roundtrip() {
        let data: Vec<i64> = (0..3000).map(|i| -7 + i * 5).collect();
        let s = EncodedStream::new_affine(Width::W8, true, -7, 5);
        check_roundtrip(s, &data);
    }

    #[test]
    fn affine_constant_column() {
        let data = vec![42i64; 2048];
        check_roundtrip(EncodedStream::new_affine(Width::W8, true, 42, 0), &data);
    }

    #[test]
    fn affine_has_no_packed_data() {
        let mut s = EncodedStream::new_affine(Width::W8, true, 0, 1);
        let before = s.physical_size();
        let data: Vec<i64> = (0..(BLOCK_SIZE as i64 * 4)).collect();
        for chunk in data.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
        // Constant storage: only the logical-size header field changed.
        assert_eq!(s.physical_size(), before);
    }

    #[test]
    fn affine_rejects_break() {
        let mut s = EncodedStream::new_affine(Width::W8, true, 0, 1);
        assert_eq!(s.append_block(&[0, 1, 3]), Err(EncodingFull::NotAffine));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn rle_roundtrip() {
        let mut data = Vec::new();
        for v in 0..40i64 {
            data.extend(std::iter::repeat_n(v, 97));
        }
        check_roundtrip(
            EncodedStream::new_rle(Width::W8, true, Width::W2, Width::W1),
            &data,
        );
    }

    #[test]
    fn rle_run_extension_across_blocks() {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W1);
        let block = vec![5i64; BLOCK_SIZE];
        for _ in 0..4 {
            s.append_block(&block).unwrap();
        }
        assert_eq!(s.rle_runs().unwrap(), vec![(5, 4 * BLOCK_SIZE as u64)]);
    }

    #[test]
    fn rle_count_overflow_starts_new_run() {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W1, Width::W1);
        // 600 repeats of one value exceed the 255 count limit of W1.
        let block = vec![9i64; 600];
        s.append_block(&block[..512]).unwrap();
        s.append_block(&block[512..]).unwrap();
        let runs = s.rle_runs().unwrap();
        assert_eq!(runs.iter().map(|r| r.1).sum::<u64>(), 600);
        assert!(runs.iter().all(|&(v, c)| v == 9 && c <= 255));
        assert_eq!(s.decode_all(), block);
    }

    #[test]
    fn rle_value_out_of_width() {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W1);
        assert_eq!(s.append_block(&[128]), Err(EncodingFull::ValueOutOfRange));
        s.append_block(&[127, -128]).unwrap();
    }

    #[test]
    fn partial_block_pads_physically() {
        let mut s = EncodedStream::new_frame(Width::W8, true, 0, 8);
        s.append_block(&[1, 2, 3]).unwrap();
        assert_eq!(s.len(), 3);
        // Physical data covers a whole block.
        let h = s.header();
        assert_eq!(s.physical_size() - h.data_offset, BLOCK_SIZE);
        assert_eq!(s.decode_all(), vec![1, 2, 3]);
    }

    #[test]
    fn from_buf_roundtrip() {
        let mut s = EncodedStream::new_dict(Width::W8, true, 5);
        s.append_block(&[3, 1, 4, 1, 5, 9, 2, 6]).unwrap();
        let bytes = s.as_bytes().to_vec();
        let s2 = EncodedStream::from_buf(bytes);
        assert_eq!(s2.decode_all(), vec![3, 1, 4, 1, 5, 9, 2, 6]);
        assert!(s2.sealed);
    }

    #[test]
    fn dict_append_after_deserialize() {
        // The cuckoo index is transient; appending to a wrapped buffer must
        // rebuild it and keep entries consistent.
        let mut s = EncodedStream::new_dict(Width::W8, true, 5);
        let block: Vec<i64> = (0..BLOCK_SIZE as i64).map(|i| i % 20).collect();
        s.append_block(&block).unwrap();
        let mut s2 = EncodedStream::from_buf(s.as_bytes().to_vec());
        s2.append_block(&block).unwrap();
        assert_eq!(s2.len(), 2 * BLOCK_SIZE as u64);
        assert_eq!(s2.dict_entries().unwrap().len(), 20);
        let expected: Vec<i64> = block.iter().chain(block.iter()).copied().collect();
        assert_eq!(s2.decode_all(), expected);
    }
}

//! Lightweight column encodings (paper §3).
//!
//! An [`EncodedStream`] is a self-describing byte buffer: a fixed header
//! (paper Fig 1) followed by complete *decompression blocks* of bit-packed
//! values. The header caches the logical size, the offset to the packed
//! data, the block size, the algorithm, the element width and the packing
//! bit count — exactly the fields the paper's header manipulations edit.
//!
//! Five algorithms are implemented (plus unencoded raw storage):
//!
//! * [`Algorithm::FrameOfReference`] — values packed relative to a frame (§3.1.1)
//! * [`Algorithm::Delta`] — per-block bases plus packed deltas (§3.1.2)
//! * [`Algorithm::Dictionary`] — ≤ 2¹⁵ distinct values, cuckoo-hashed (§3.1.3)
//! * [`Algorithm::Affine`] — `value = base + row · delta`, zero packing bits (§3.1.4)
//! * [`Algorithm::RunLength`] — length/value pairs with per-stream field widths (§3.1.5)
//!
//! The companion modules implement the paper's §3.2–3.4 machinery:
//! [`stats`] (streaming statistics + encoding choice), [`dynamic`] (the
//! dynamic re-encoder), [`manipulate`] (O(1)/O(2^bits) header edits such as
//! type narrowing and dictionary remapping) and [`metadata`] (the extracted
//! column properties consumed by the tactical optimizer).

pub mod affine;
pub mod bitpack;
pub mod cuckoo;
pub mod delta;
pub mod dict;
pub mod dynamic;
pub mod frame;
pub mod header;
pub mod kernel;
pub mod manipulate;
pub mod metadata;
pub mod raw;
pub mod rle;
pub mod stats;
pub mod stream;

pub use dynamic::DynamicEncoder;
pub use metadata::ColumnMetadata;
pub use stats::{ColumnStats, EncodingSpec};
pub use stream::EncodedStream;

/// Number of values per decompression block. A multiple of 32 so the bit
/// packing of every block ends on a byte boundary (paper §3.1), and equal
/// to the engine's block iteration size so one decode call serves one
/// execution block.
pub const BLOCK_SIZE: usize = 1024;

/// Dictionary encodings are limited to 2¹⁵ values to keep the dictionary
/// in cache and the cuckoo hash simple and fast (paper §3.1.3).
pub const DICT_MAX_BITS: u8 = 15;

/// The encoding algorithm, stored as one byte in the stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Algorithm {
    /// Unencoded fixed-width values.
    None = 0,
    /// Frame-of-reference: packed values are offsets from a frame value.
    FrameOfReference = 1,
    /// Delta: packed values are successive differences minus the minimum
    /// delta; each block carries its starting value for random access.
    Delta = 2,
    /// Dictionary: packed values index a small table of distinct values.
    Dictionary = 3,
    /// Affine: `value = base + row * delta`; no packed data at all.
    Affine = 4,
    /// Run-length: (count, value) pairs.
    RunLength = 5,
}

impl Algorithm {
    /// Decode the header byte.
    pub fn from_tag(tag: u8) -> Option<Algorithm> {
        Some(match tag {
            0 => Algorithm::None,
            1 => Algorithm::FrameOfReference,
            2 => Algorithm::Delta,
            3 => Algorithm::Dictionary,
            4 => Algorithm::Affine,
            5 => Algorithm::RunLength,
            _ => return None,
        })
    }

    /// Short name used in explain output and the figure harnesses.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::None => "none",
            Algorithm::FrameOfReference => "for",
            Algorithm::Delta => "delta",
            Algorithm::Dictionary => "dict",
            Algorithm::Affine => "affine",
            Algorithm::RunLength => "rle",
        }
    }

    /// Whether random access into a stream of this encoding is cheap.
    /// Backward seeks in run-length data require a scan from the start
    /// (paper §4.3), so RLE is excluded from hash-join inner sides.
    pub fn cheap_random_access(self) -> bool {
        !matches!(self, Algorithm::RunLength)
    }

    /// All algorithms, for the figure harnesses.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::None,
        Algorithm::FrameOfReference,
        Algorithm::Delta,
        Algorithm::Dictionary,
        Algorithm::Affine,
        Algorithm::RunLength,
    ];
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an append into an encoded stream failed; the dynamic encoder reacts
/// by consulting the column statistics and re-encoding (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingFull {
    /// A value does not fit in the packing-bit range of the encoding.
    ValueOutOfRange,
    /// The dictionary has reached its 2^bits entry limit.
    DictionaryFull,
    /// The value breaks the affine progression.
    NotAffine,
    /// The stream was sealed by a partial final block; no further appends.
    Sealed,
}

impl std::fmt::Display for EncodingFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EncodingFull::ValueOutOfRange => "value out of encoding range",
            EncodingFull::DictionaryFull => "dictionary full",
            EncodingFull::NotAffine => "value breaks affine progression",
            EncodingFull::Sealed => "stream sealed by partial block",
        };
        f.write_str(s)
    }
}

impl std::error::Error for EncodingFull {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_tag_roundtrip() {
        for a in Algorithm::ALL {
            assert_eq!(Algorithm::from_tag(a as u8), Some(a));
        }
        assert_eq!(Algorithm::from_tag(99), None);
    }

    #[test]
    fn block_size_is_multiple_of_32() {
        assert_eq!(BLOCK_SIZE % 32, 0);
    }

    #[test]
    fn rle_random_access_is_expensive() {
        assert!(!Algorithm::RunLength.cheap_random_access());
        assert!(Algorithm::Dictionary.cheap_random_access());
    }
}

//! Run-length encoding (paper §3.1.5).
//!
//! Unlike the bit-packed encodings, the data is a sequence of fixed-size
//! (count, value) pairs; the header records the widths of the two fields,
//! which are fixed for the entire stream. Runs longer than the count field
//! can represent simply split into several pairs.
//!
//! Sequential access is cheap but *backward seeks require a scan from the
//! start of the stream* (paper §4.3), which is why the strategic optimizer
//! keeps RLE off the inner side of hash joins, and why the IndexTable of
//! §4.2 — (value, count, start) triples extracted from these runs — exists.

use crate::header::{self, HeaderView};
use crate::{Algorithm, EncodingFull};
use tde_types::Width;

/// Offset of the count-field width byte.
pub const OFF_COUNT_WIDTH: usize = header::COMMON_LEN;

/// Offset of the value-field width byte.
pub const OFF_VALUE_WIDTH: usize = header::COMMON_LEN + 1;

/// Header length (count/value width bytes padded to 8).
const HEADER_LEN: usize = header::COMMON_LEN + 8;

/// Create an empty run-length stream buffer.
pub fn new_stream(
    width: Width,
    block_size: usize,
    signed: bool,
    count_width: Width,
    value_width: Width,
) -> Vec<u8> {
    let mut buf = header::make_common(Algorithm::RunLength, width, 0, block_size, signed, 8);
    buf[OFF_COUNT_WIDTH] = count_width.bytes() as u8;
    buf[OFF_VALUE_WIDTH] = value_width.bytes() as u8;
    debug_assert_eq!(buf.len(), HEADER_LEN);
    buf
}

/// The two field widths (count, value) from the header.
pub fn field_widths(buf: &[u8]) -> (Width, Width) {
    (
        Width::from_bytes(buf[OFF_COUNT_WIDTH] as usize).expect("corrupt RLE count width"),
        Width::from_bytes(buf[OFF_VALUE_WIDTH] as usize).expect("corrupt RLE value width"),
    )
}

#[inline]
fn pair_bytes(cw: Width, vw: Width) -> usize {
    cw.bytes() + vw.bytes()
}

/// Largest count representable in the count field.
#[inline]
fn max_count(cw: Width) -> u64 {
    if cw == Width::W8 {
        u64::MAX
    } else {
        (1u64 << cw.bits()) - 1
    }
}

/// Whether `v` fits in the value field.
#[inline]
fn value_fits(v: i64, vw: Width, signed: bool) -> bool {
    if vw == Width::W8 {
        return true;
    }
    if signed {
        let lo = -(1i64 << (vw.bits() - 1));
        let hi = (1i64 << (vw.bits() - 1)) - 1;
        v >= lo && v <= hi
    } else {
        v >= 0 && (v as u64) < (1u64 << vw.bits())
    }
}

/// Number of stored runs.
pub fn run_count(buf: &[u8], h: &HeaderView) -> usize {
    let (cw, vw) = field_widths(buf);
    (buf.len() - h.data_offset) / pair_bytes(cw, vw)
}

/// Read run `r` as (value, count).
pub fn run_at(buf: &[u8], h: &HeaderView, r: usize) -> (i64, u64) {
    let (cw, vw) = field_widths(buf);
    let off = h.data_offset + r * pair_bytes(cw, vw);
    let count = header::get_fixed(buf, off, cw, false) as u64;
    let value = header::get_fixed(buf, off + cw.bytes(), vw, h.signed);
    (value, count)
}

/// All runs as (value, count) pairs — the raw material for an IndexTable.
/// Callers that only iterate should prefer [`run_iter`], which reads one
/// fixed-size pair per step without materializing the `Vec`.
pub fn runs(buf: &[u8], h: &HeaderView) -> Vec<(i64, u64)> {
    run_iter(buf, h).collect()
}

/// Lazy iterator over the (value, count) run pairs.
///
/// One fixed-size pair is read per step, so iterate-only consumers (the
/// run-skipping predicate kernel, `manipulate`'s RLE decomposition, run
/// aggregation) stay O(1) in space where [`runs`] is O(runs).
#[derive(Debug, Clone)]
pub struct RunIter<'a> {
    buf: &'a [u8],
    signed: bool,
    cw: Width,
    vw: Width,
    off: usize,
}

/// Iterate all runs of the stream from the first.
pub fn run_iter<'a>(buf: &'a [u8], h: &HeaderView) -> RunIter<'a> {
    run_iter_from(buf, h, 0)
}

/// Iterate runs starting at run index `first` (pairs are fixed size, so
/// positioning is O(1)). `first` past the end yields an empty iterator.
pub fn run_iter_from<'a>(buf: &'a [u8], h: &HeaderView, first: usize) -> RunIter<'a> {
    let (cw, vw) = field_widths(buf);
    RunIter {
        buf,
        signed: h.signed,
        cw,
        vw,
        off: h.data_offset + first * pair_bytes(cw, vw),
    }
}

impl Iterator for RunIter<'_> {
    type Item = (i64, u64);

    fn next(&mut self) -> Option<(i64, u64)> {
        if self.off + pair_bytes(self.cw, self.vw) > self.buf.len() {
            return None;
        }
        let count = header::get_fixed(self.buf, self.off, self.cw, false) as u64;
        let value = header::get_fixed(self.buf, self.off + self.cw.bytes(), self.vw, self.signed);
        self.off += pair_bytes(self.cw, self.vw);
        Some((value, count))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.buf.len().saturating_sub(self.off) / pair_bytes(self.cw, self.vw);
        (left, Some(left))
    }
}

impl ExactSizeIterator for RunIter<'_> {}

/// Append one block. The last stored run is extended in place when the
/// first new values continue it; count-field overflow starts a new pair.
pub fn append_block(buf: &mut Vec<u8>, h: &HeaderView, vals: &[i64]) -> Result<(), EncodingFull> {
    let (cw, vw) = field_widths(buf);
    // Validate the whole block before mutating anything.
    for &v in vals {
        if !value_fits(v, vw, h.signed) {
            return Err(EncodingFull::ValueOutOfRange);
        }
    }
    let pair = pair_bytes(cw, vw);
    let cap = max_count(cw);
    let mut i = 0usize;
    // Try to extend the final stored run.
    if buf.len() > h.data_offset {
        let last_off = buf.len() - pair;
        let last_count = header::get_fixed(buf, last_off, cw, false) as u64;
        let last_value = header::get_fixed(buf, last_off + cw.bytes(), vw, h.signed);
        if vals[0] == last_value && last_count < cap {
            let mut n = 0u64;
            while i < vals.len() && vals[i] == last_value && last_count + n < cap {
                n += 1;
                i += 1;
            }
            header::put_fixed(buf, last_off, cw, (last_count + n) as i64);
        }
    }
    // Emit the remaining values as new runs.
    while i < vals.len() {
        let v = vals[i];
        let mut n = 0u64;
        while i < vals.len() && vals[i] == v && n < cap {
            n += 1;
            i += 1;
        }
        let off = buf.len();
        buf.resize(off + pair, 0);
        header::put_fixed(buf, off, cw, n as i64);
        header::put_fixed(buf, off + cw.bytes(), vw, v);
    }
    Ok(())
}

/// Decode one block by scanning runs from the start of the stream
/// (stateless; the sequential [`Cursor`] avoids the rescan). Unlike the
/// bit-packed encodings there is no physical padding to strip: the run
/// stream yields exactly the logical values.
pub fn decode_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<i64>) {
    let mut cursor = Cursor::new();
    cursor.skip_to(buf, h, (block_idx * h.block_size) as u64);
    cursor.take(buf, h, h.block_size, out);
}

/// Random access: a forward scan over the runs (paper §4.3).
pub fn get(buf: &[u8], h: &HeaderView, idx: u64) -> i64 {
    let mut seen = 0u64;
    for r in 0..run_count(buf, h) {
        let (v, c) = run_at(buf, h, r);
        seen += c;
        if idx < seen {
            return v;
        }
    }
    panic!("RLE index {idx} out of range");
}

/// A sequential decode cursor that remembers its run position, making a
/// full-stream scan linear in runs instead of runs × blocks.
#[derive(Debug, Clone, Default)]
pub struct Cursor {
    run: usize,
    within: u64,
    pos: u64,
}

impl Cursor {
    /// A cursor at the start of the stream.
    pub fn new() -> Cursor {
        Cursor::default()
    }

    /// Current logical position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Advance (forward only) to logical position `target`.
    pub fn skip_to(&mut self, buf: &[u8], h: &HeaderView, target: u64) {
        assert!(target >= self.pos, "RLE cursors cannot seek backwards");
        let total = run_count(buf, h);
        let mut remaining = target - self.pos;
        while remaining > 0 && self.run < total {
            let (_, c) = run_at(buf, h, self.run);
            let left = c - self.within;
            if remaining < left {
                self.within += remaining;
                remaining = 0;
            } else {
                remaining -= left;
                self.run += 1;
                self.within = 0;
            }
        }
        self.pos = target;
    }

    /// Decode up to `n` values (fewer at end of stream), appending to `out`.
    pub fn take(&mut self, buf: &[u8], h: &HeaderView, n: usize, out: &mut Vec<i64>) -> usize {
        let total = run_count(buf, h);
        let mut produced = 0usize;
        while produced < n && self.run < total {
            let (v, c) = run_at(buf, h, self.run);
            let avail = (c - self.within) as usize;
            let take = avail.min(n - produced);
            out.extend(std::iter::repeat_n(v, take));
            produced += take;
            if take == avail {
                self.run += 1;
                self.within = 0;
            } else {
                self.within += take as u64;
            }
        }
        self.pos += produced as u64;
        produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncodedStream, BLOCK_SIZE};

    fn build(data: &[i64]) -> EncodedStream {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
        for c in data.chunks(BLOCK_SIZE) {
            s.append_block(c).unwrap();
        }
        s
    }

    #[test]
    fn cursor_matches_decode_all() {
        let mut data = Vec::new();
        for v in 0..60i64 {
            data.extend(std::iter::repeat_n(v * 3, 37 + (v as usize % 11)));
        }
        let s = build(&data);
        let h = s.header();
        let mut cursor = Cursor::new();
        let mut out = Vec::new();
        while cursor.take(s.as_bytes(), &h, 100, &mut out) > 0 {}
        assert_eq!(out, data);
    }

    #[test]
    fn cursor_skip_and_take() {
        let mut data = Vec::new();
        for v in 0..50i64 {
            data.extend(std::iter::repeat_n(v, 20));
        }
        let s = build(&data);
        let h = s.header();
        let mut cursor = Cursor::new();
        cursor.skip_to(s.as_bytes(), &h, 333);
        let mut out = Vec::new();
        cursor.take(s.as_bytes(), &h, 10, &mut out);
        assert_eq!(out, data[333..343].to_vec());
    }

    #[test]
    fn unsigned_values() {
        let mut s = EncodedStream::new_rle(Width::W8, false, Width::W2, Width::W1);
        s.append_block(&[200, 200, 255]).unwrap();
        assert_eq!(s.decode_all(), vec![200, 200, 255]);
        assert_eq!(s.rle_runs().unwrap(), vec![(200, 2), (255, 1)]);
    }

    #[test]
    fn atomic_failure_on_bad_value() {
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W2, Width::W1);
        s.append_block(&[1, 1]).unwrap();
        let snap = s.as_bytes().to_vec();
        assert_eq!(
            s.append_block(&[1, 1000]),
            Err(EncodingFull::ValueOutOfRange)
        );
        assert_eq!(s.as_bytes(), &snap[..]);
    }

    #[test]
    fn run_iter_matches_runs_and_resumes_mid_stream() {
        let mut data = Vec::new();
        for v in 0..40i64 {
            data.extend(std::iter::repeat_n(v - 20, 13 + (v as usize % 5)));
        }
        let s = build(&data);
        let h = s.header();
        let eager = (0..run_count(s.as_bytes(), &h))
            .map(|r| run_at(s.as_bytes(), &h, r))
            .collect::<Vec<_>>();
        assert_eq!(run_iter(s.as_bytes(), &h).collect::<Vec<_>>(), eager);
        assert_eq!(run_iter(s.as_bytes(), &h).len(), eager.len());
        assert_eq!(
            run_iter_from(s.as_bytes(), &h, 7).collect::<Vec<_>>(),
            eager[7..].to_vec()
        );
        assert_eq!(
            run_iter_from(s.as_bytes(), &h, eager.len()).next(),
            None,
            "positioning past the end yields nothing"
        );
    }

    #[test]
    fn alternating_values_worst_case() {
        let data: Vec<i64> = (0..500).map(|i| i % 2).collect();
        let s = build(&data);
        assert_eq!(s.decode_all(), data);
        assert_eq!(s.rle_runs().unwrap().len(), 500);
    }
}

//! Streaming column statistics and encoding choice (paper §3.2).
//!
//! As values are inserted we continually track simple statistics — the
//! value range, the delta range, run boundaries and a bounded distinct set.
//! At any point the statistics determine the best available encoding; the
//! dynamic encoder consults them whenever an insert fails and once more at
//! the end for the optional conversion to the optimal format.

use crate::bitpack::bits_for_max;
use crate::{Algorithm, EncodedStream, BLOCK_SIZE, DICT_MAX_BITS};
use tde_types::sentinel::NULL_I64;
use tde_types::Width;

/// A fast open-addressing set of `i64` values, bounded by the dictionary
/// limit. Statistics run per inserted value on the import hot path, so the
/// general-purpose hasher is replaced by a multiply-shift probe.
#[derive(Debug, Clone)]
pub struct DistinctSet {
    slots: Vec<i64>,
    used: Vec<bool>,
    shift: u32,
    len: usize,
}

impl DistinctSet {
    fn new() -> DistinctSet {
        let cap = 64usize;
        DistinctSet {
            slots: vec![0; cap],
            used: vec![false; cap],
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of distinct values inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the values.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.slots
            .iter()
            .zip(&self.used)
            .filter(|(_, &u)| u)
            .map(|(&v, _)| v)
    }

    #[inline]
    fn insert(&mut self, v: i64) {
        let mask = self.slots.len() - 1;
        let mut i = ((v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize;
        loop {
            if !self.used[i] {
                self.used[i] = true;
                self.slots[i] = v;
                self.len += 1;
                if self.len * 4 > self.slots.len() * 3 {
                    self.grow();
                }
                return;
            }
            if self.slots[i] == v {
                return;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let values: Vec<i64> = self.iter().collect();
        let cap = self.slots.len() * 2;
        self.slots = vec![0; cap];
        self.used = vec![false; cap];
        self.shift = 64 - cap.trailing_zeros();
        self.len = 0;
        for v in values {
            self.insert(v);
        }
    }
}

/// Streaming statistics for one column of logical `i64` values.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Values seen.
    pub count: u64,
    /// Minimum value (sentinels included — NULL *is* the minimum, which is
    /// how nullability is detected, §3.4.2).
    pub min: i64,
    /// Maximum value.
    pub max: i64,
    /// Minimum consecutive delta (valid when `count >= 2`).
    pub min_delta: i64,
    /// Maximum consecutive delta.
    pub max_delta: i64,
    /// Number of runs of equal values.
    pub runs: u64,
    /// Longest run seen.
    pub max_run: u64,
    /// Values equal to the NULL sentinel.
    pub null_count: u64,
    /// Set when a consecutive delta overflowed `i64`; delta-family
    /// encodings are then ruled out entirely.
    pub delta_overflow: bool,
    /// Distinct values, tracked until the dictionary limit is passed.
    distinct: Option<DistinctSet>,
    last: Option<i64>,
    current_run: u64,
}

impl Default for ColumnStats {
    fn default() -> Self {
        ColumnStats::new()
    }
}

impl ColumnStats {
    /// Empty statistics.
    pub fn new() -> ColumnStats {
        ColumnStats {
            count: 0,
            min: i64::MAX,
            max: i64::MIN,
            min_delta: i64::MAX,
            max_delta: i64::MIN,
            runs: 0,
            max_run: 0,
            null_count: 0,
            delta_overflow: false,
            distinct: Some(DistinctSet::new()),
            last: None,
            current_run: 0,
        }
    }

    /// Fold a block of values into the statistics.
    pub fn update(&mut self, vals: &[i64]) {
        for &v in vals {
            self.count += 1;
            let repeat = self.last == Some(v);
            if v < self.min {
                self.min = v;
            }
            if v > self.max {
                self.max = v;
            }
            if v == NULL_I64 {
                self.null_count += 1;
            }
            match self.last {
                Some(prev) => {
                    let d = v.wrapping_sub(prev);
                    // An overflowing delta poisons the delta statistics:
                    // no delta-family encoding can represent it.
                    if (v >= prev) != (d >= 0) {
                        self.delta_overflow = true;
                    }
                    if d < self.min_delta {
                        self.min_delta = d;
                    }
                    if d > self.max_delta {
                        self.max_delta = d;
                    }
                    if v == prev {
                        self.current_run += 1;
                    } else {
                        self.runs += 1;
                        self.max_run = self.max_run.max(self.current_run);
                        self.current_run = 1;
                    }
                }
                None => {
                    self.runs = 1;
                    self.current_run = 1;
                }
            }
            self.last = Some(v);
            if repeat {
                continue;
            }
            if let Some(set) = &mut self.distinct {
                set.insert(v);
                if set.len() > (1 << DICT_MAX_BITS) {
                    self.distinct = None;
                }
            }
        }
        self.max_run = self.max_run.max(self.current_run);
    }

    /// Distinct value count if it is still being tracked (≤ 2¹⁵).
    pub fn cardinality(&self) -> Option<u64> {
        self.distinct.as_ref().map(|s| s.len() as u64)
    }

    /// The distinct values themselves, if still tracked.
    pub fn distinct_values(&self) -> Option<&DistinctSet> {
        self.distinct.as_ref()
    }

    /// Whether every observed delta is non-negative (column is sorted
    /// ascending). Vacuously true for 0/1 values.
    pub fn is_sorted_asc(&self) -> bool {
        self.count < 2 || (!self.delta_overflow && self.min_delta >= 0)
    }

    /// Whether the column is an exact affine progression.
    pub fn is_affine(&self) -> bool {
        self.count >= 1
            && (self.count < 2 || (!self.delta_overflow && self.min_delta == self.max_delta))
    }

    /// Whether the column is dense and unique: an affine progression with
    /// delta 1 (paper §3.4.2 — enables fetch joins downstream).
    pub fn is_dense_unique(&self) -> bool {
        self.count >= 1 && (self.count < 2 || (self.is_affine() && self.min_delta == 1))
    }

    /// Whether any NULL sentinel was seen.
    pub fn has_nulls(&self) -> bool {
        self.null_count > 0
    }
}

/// A concrete encoding choice with its construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingSpec {
    /// Unencoded values.
    None,
    /// Frame-of-reference with the given frame and packing bits.
    Frame { frame: i64, bits: u8 },
    /// Delta with the given minimum delta and packing bits.
    Delta { min_delta: i64, bits: u8 },
    /// Dictionary with room for `2^bits` entries.
    Dict { bits: u8 },
    /// Affine progression.
    Affine { base: i64, delta: i64 },
    /// Run-length with the given field widths.
    Rle {
        count_width: Width,
        value_width: Width,
    },
}

impl EncodingSpec {
    /// The algorithm this spec builds.
    pub fn algorithm(&self) -> Algorithm {
        match self {
            EncodingSpec::None => Algorithm::None,
            EncodingSpec::Frame { .. } => Algorithm::FrameOfReference,
            EncodingSpec::Delta { .. } => Algorithm::Delta,
            EncodingSpec::Dict { .. } => Algorithm::Dictionary,
            EncodingSpec::Affine { .. } => Algorithm::Affine,
            EncodingSpec::Rle { .. } => Algorithm::RunLength,
        }
    }

    /// Build an empty stream per this spec.
    pub fn build(&self, width: Width, signed: bool) -> EncodedStream {
        match *self {
            EncodingSpec::None => EncodedStream::new_raw(width, signed),
            EncodingSpec::Frame { frame, bits } => {
                EncodedStream::new_frame(width, signed, frame, bits)
            }
            EncodingSpec::Delta { min_delta, bits } => {
                EncodedStream::new_delta(width, signed, min_delta, bits)
            }
            EncodingSpec::Dict { bits } => EncodedStream::new_dict(width, signed, bits),
            EncodingSpec::Affine { base, delta } => {
                EncodedStream::new_affine(width, signed, base, delta)
            }
            EncodingSpec::Rle {
                count_width,
                value_width,
            } => EncodedStream::new_rle(width, signed, count_width, value_width),
        }
    }
}

/// Which algorithms the chooser may pick. The strategic optimizer restricts
/// this on the inner side of hash joins, where RLE's poor random access
/// would hurt (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllowedAlgorithms {
    mask: u8,
}

impl AllowedAlgorithms {
    /// Every algorithm allowed.
    pub fn all() -> AllowedAlgorithms {
        AllowedAlgorithms { mask: 0b11_1111 }
    }

    /// Only unencoded storage ("encodings off" baseline).
    pub fn none_only() -> AllowedAlgorithms {
        AllowedAlgorithms { mask: 0b00_0001 }
    }

    /// Only algorithms with cheap random access (hash-join inner sides).
    pub fn random_access() -> AllowedAlgorithms {
        let mut a = AllowedAlgorithms::all();
        a.mask &= !(1 << Algorithm::RunLength as u8);
        a
    }

    /// Whether `alg` is allowed.
    pub fn allows(&self, alg: Algorithm) -> bool {
        self.mask & (1 << alg as u8) != 0
    }

    /// Remove one algorithm.
    pub fn without(mut self, alg: Algorithm) -> AllowedAlgorithms {
        self.mask &= !(1 << alg as u8);
        self
    }
}

/// Estimated physical size in bytes of encoding `n` values under `spec`.
pub fn estimated_size(spec: &EncodingSpec, stats: &ColumnStats, width: Width) -> u64 {
    let n = stats.count;
    let blocks = n.div_ceil(BLOCK_SIZE as u64).max(1);
    let header = 32u64;
    match *spec {
        EncodingSpec::None => header + blocks * (BLOCK_SIZE as u64) * width.bytes() as u64,
        EncodingSpec::Frame { bits, .. } => {
            header + blocks * (BLOCK_SIZE as u64 * u64::from(bits)).div_ceil(8)
        }
        EncodingSpec::Delta { bits, .. } => {
            header + blocks * (8 + (BLOCK_SIZE as u64 * u64::from(bits)).div_ceil(8))
        }
        EncodingSpec::Dict { bits } => {
            header
                + 8
                + (1u64 << bits) * width.bytes() as u64
                + blocks * (BLOCK_SIZE as u64 * u64::from(bits)).div_ceil(8)
        }
        EncodingSpec::Affine { .. } => header + 16,
        EncodingSpec::Rle {
            count_width,
            value_width,
        } => header + stats.runs * (count_width.bytes() + value_width.bytes()) as u64,
    }
}

/// Pick the best encoding for the observed statistics (paper §3.2).
///
/// `final_pass` chooses exact parameters (the end-of-load conversion to the
/// optimal format); otherwise the dictionary gets one headroom bit so it
/// can keep growing without immediate re-encoding.
pub fn choose_encoding(
    stats: &ColumnStats,
    width: Width,
    allow: AllowedAlgorithms,
    final_pass: bool,
) -> EncodingSpec {
    choose_encoding_with(stats, width, allow, final_pass, false)
}

/// [`choose_encoding`] with a dictionary preference: string heap tokens are
/// offsets, not dense indexes, so small-domain token streams should end up
/// dictionary encoded (paper §6.3) — the dictionary is what enables heap
/// sorting and the invisible-join machinery, so it wins ties against the
/// other bit-packed encodings even when marginally larger.
pub fn choose_encoding_with(
    stats: &ColumnStats,
    width: Width,
    allow: AllowedAlgorithms,
    final_pass: bool,
    prefer_dictionary: bool,
) -> EncodingSpec {
    if stats.count == 0 {
        return EncodingSpec::None;
    }
    let mut best = EncodingSpec::None;
    let mut best_size = estimated_size(&EncodingSpec::None, stats, width);
    let mut consider = |spec: EncodingSpec| {
        if !allow.allows(spec.algorithm()) {
            return;
        }
        let size = estimated_size(&spec, stats, width);
        if size < best_size {
            best = spec;
            best_size = size;
        }
    };

    // Affine: exact progression, constant storage. Short-circuits because
    // it is both (near-)optimal physically and semantically the richest —
    // O(1) narrowing and the dense/unique metadata that enables fetch
    // joins (§3.4.2).
    if stats.is_affine() && allow.allows(Algorithm::Affine) {
        let delta = if stats.count >= 2 { stats.min_delta } else { 0 };
        let base = stats.last.map_or(0, |l| {
            l.wrapping_sub((stats.count as i64 - 1).wrapping_mul(delta))
        });
        return EncodingSpec::Affine { base, delta };
    }

    // Frame-of-reference over the value range.
    let range = (stats.max as i128) - (stats.min as i128);
    if range < (1i128 << 64) {
        let bits = if range == 0 {
            0
        } else {
            bits_for_max(range as u64)
        };
        consider(EncodingSpec::Frame {
            frame: stats.min,
            bits,
        });
    }

    // Delta over the delta range.
    if stats.count >= 2 && !stats.delta_overflow {
        let drange = (stats.max_delta as i128) - (stats.min_delta as i128);
        if (0..(1i128 << 64)).contains(&drange) {
            let bits = if drange == 0 {
                0
            } else {
                bits_for_max(drange as u64)
            };
            consider(EncodingSpec::Delta {
                min_delta: stats.min_delta,
                bits,
            });
        }
    }

    // Dictionary over the distinct set.
    if let Some(card) = stats.cardinality() {
        if card > 0 && card <= (1 << DICT_MAX_BITS) {
            let exact = bits_for_max(card - 1).max(1);
            let bits = if final_pass {
                exact
            } else {
                (exact + 1).min(DICT_MAX_BITS)
            };
            if bits <= DICT_MAX_BITS && allow.allows(Algorithm::Dictionary) {
                let spec = EncodingSpec::Dict { bits };
                if prefer_dictionary {
                    // Token streams: take the dictionary whenever it beats
                    // raw storage at all — its semantic value (sortable
                    // heap, remappable entries) outweighs a few packing
                    // bits against FoR/delta/RLE.
                    let dict_size = estimated_size(&spec, stats, width);
                    let raw_size = estimated_size(&EncodingSpec::None, stats, width);
                    if dict_size < raw_size {
                        return spec;
                    }
                }
                consider(spec);
            }
        }
    }

    // Run-length over the observed runs.
    let count_width = Width::for_unsigned_max(stats.max_run.max(1));
    let value_width = Width::for_signed_range(stats.min, stats.max, false);
    consider(EncodingSpec::Rle {
        count_width,
        value_width,
    });

    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(vals: &[i64]) -> ColumnStats {
        let mut s = ColumnStats::new();
        s.update(vals);
        s
    }

    #[test]
    fn tracks_ranges_and_runs() {
        let s = stats_of(&[5, 5, 5, 7, 7, 3]);
        assert_eq!(s.count, 6);
        assert_eq!((s.min, s.max), (3, 7));
        assert_eq!((s.min_delta, s.max_delta), (-4, 2));
        assert_eq!(s.runs, 3);
        assert_eq!(s.max_run, 3);
        assert_eq!(s.cardinality(), Some(3));
    }

    #[test]
    fn sortedness_and_affinity() {
        assert!(stats_of(&[1, 2, 3, 4]).is_sorted_asc());
        assert!(stats_of(&[1, 2, 3, 4]).is_dense_unique());
        assert!(stats_of(&[10, 20, 30]).is_affine());
        assert!(!stats_of(&[10, 20, 30]).is_dense_unique());
        assert!(!stats_of(&[1, 3, 2]).is_sorted_asc());
        assert!(stats_of(&[5, 5, 5]).is_affine()); // constant
    }

    #[test]
    fn nullability_from_sentinel() {
        let s = stats_of(&[1, NULL_I64, 3]);
        assert!(s.has_nulls());
        assert_eq!(s.null_count, 1);
        assert_eq!(s.min, NULL_I64); // NULL is the minimum
    }

    #[test]
    fn chooses_affine_for_sequence() {
        let s = stats_of(&(0..1000).map(|i| 10 + i * 4).collect::<Vec<_>>());
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert_eq!(spec, EncodingSpec::Affine { base: 10, delta: 4 });
    }

    #[test]
    fn chooses_dict_for_small_domain_wide_values() {
        let vals: Vec<i64> = (0..5000).map(|i| (i % 10) * 1_000_000_007).collect();
        let s = stats_of(&vals);
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert!(matches!(spec, EncodingSpec::Dict { bits: 4 }), "{spec:?}");
    }

    #[test]
    fn chooses_rle_for_long_runs() {
        let mut vals = Vec::new();
        for v in 0..5i64 {
            vals.extend(std::iter::repeat_n(v * 1_000_000, 10_000));
        }
        let s = stats_of(&vals);
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert!(matches!(spec, EncodingSpec::Rle { .. }), "{spec:?}");
        // ...but not when RLE is disallowed (hash-join inner side).
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::random_access(), true);
        assert_ne!(spec.algorithm(), Algorithm::RunLength);
    }

    #[test]
    fn chooses_frame_for_small_range() {
        let vals: Vec<i64> = (0..100_000).map(|i| 1_000_000 + (i * 37) % 200).collect();
        // ~200 distinct values also admits dict, but FoR needs 8 bits with
        // no dictionary overhead and wins; both beat raw by ~8x.
        let s = stats_of(&vals);
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert_eq!(
            spec,
            EncodingSpec::Frame {
                frame: 1_000_000,
                bits: 8
            }
        );
    }

    #[test]
    fn chooses_delta_for_sorted_jitter() {
        // Sorted with small jittered gaps but a huge overall range.
        let mut v = 0i64;
        let vals: Vec<i64> = (0..100_000)
            .map(|i| {
                v += 1_000 + (i % 7);
                v
            })
            .collect();
        let s = stats_of(&vals);
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert!(
            matches!(
                spec,
                EncodingSpec::Delta {
                    min_delta: 1000,
                    ..
                }
            ),
            "{spec:?}"
        );
    }

    #[test]
    fn none_for_random_wide_data() {
        let vals: Vec<i64> = (0..20_000)
            .map(|i| (i as i64).wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
            .collect();
        let s = stats_of(&vals);
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert_eq!(spec, EncodingSpec::None);
    }

    #[test]
    fn empty_stats() {
        let s = ColumnStats::new();
        assert_eq!(
            choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true),
            EncodingSpec::None
        );
    }

    #[test]
    fn delta_overflow_poisons_delta_encodings() {
        let s = stats_of(&[i64::MIN + 1, i64::MAX - 1]);
        assert!(s.delta_overflow);
        assert!(!s.is_affine());
        let spec = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        assert!(!matches!(
            spec,
            EncodingSpec::Delta { .. } | EncodingSpec::Affine { .. }
        ));
    }

    #[test]
    fn headroom_bit_off_final_pass() {
        let vals: Vec<i64> = (0..1000).map(|i| i % 16).collect();
        let s = stats_of(&vals);
        let grow = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), false);
        let fin = choose_encoding(&s, Width::W8, AllowedAlgorithms::all(), true);
        // 16 distinct: exact 4 bits; growth pass leaves room with 5.
        // (Either may lose to FoR on size; force dict-only to compare.)
        let dict_only = AllowedAlgorithms::none_only();
        let _ = dict_only;
        if let (EncodingSpec::Dict { bits: b1 }, EncodingSpec::Dict { bits: b2 }) = (grow, fin) {
            assert_eq!(b1, b2 + 1);
        }
    }
}

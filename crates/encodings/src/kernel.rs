//! Compressed-domain predicate kernels (paper §3.3–§3.4).
//!
//! A pushed-down single-column predicate is first compiled (by the
//! execution layer) into a [`ValueSet`] — a normalized set of closed
//! `i64` intervals whose membership test is *exactly* the predicate's
//! truth value on a raw stored value, NULL sentinel included. Each
//! encoding then answers the predicate against its compressed form:
//!
//! * **run-length** (§3.1.5): test once per run, emit or skip the whole
//!   run — [`Strategy::Rle`];
//! * **dictionary** (§3.1.4): evaluate over the ≤2^15 dictionary entries
//!   once, then compare packed codes against the resulting code set —
//!   [`Strategy::DictCodes`];
//! * **affine** (§3.1.3): solve `base + row·delta ∈ [lo, hi]` in closed
//!   form for the matching row interval — no decode at all;
//! * **delta** (§3.1.2) with a non-negative minimum delta (header-proved
//!   sorted): binary-search the interval boundaries into row ranges;
//! * **frame-of-reference** (§3.1.1): the header envelope
//!   `[frame, frame + 2^bits - 1]` decides all-match / none-match;
//!   partial overlap falls back to decode-then-eval.
//!
//! [`PredicateKernel::build`] returns `None` for shapes it cannot answer
//! exactly; the scan then falls back to the decode-then-eval path, which
//! remains the semantics oracle (`tests/compressed_kernels_diff.rs`).

use crate::metadata::{ColumnMetadata, Knowledge};
use crate::{affine, dict, manipulate, rle, Algorithm, EncodedStream};
use tde_types::sentinel::NULL_I64;

/// Smallest non-sentinel value: comparison predicates never match the
/// NULL sentinel, so their intervals start here.
const NON_NULL_MIN: i64 = i64::MIN + 1;

/// A set of `i64` values stored as sorted, disjoint, maximally-merged
/// closed intervals. Membership is the exact truth value of the compiled
/// predicate on a raw stored value (the NULL sentinel is an ordinary
/// domain point: comparison sets exclude it, `is_null` is exactly it,
/// and complement — `NOT` — re-includes it, matching expression
/// evaluation where `NOT (x = 5)` is true on NULL rows).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueSet {
    ivs: Vec<(i64, i64)>,
}

impl ValueSet {
    /// The empty set: no value matches.
    pub fn empty() -> ValueSet {
        ValueSet { ivs: Vec::new() }
    }

    /// Every `i64`, sentinel included.
    pub fn full() -> ValueSet {
        ValueSet {
            ivs: vec![(i64::MIN, i64::MAX)],
        }
    }

    /// A single value.
    pub fn point(v: i64) -> ValueSet {
        ValueSet { ivs: vec![(v, v)] }
    }

    /// Normalize arbitrary closed intervals: drop empty ones, sort, and
    /// merge overlapping or adjacent neighbours.
    pub fn from_intervals(mut ivs: Vec<(i64, i64)>) -> ValueSet {
        ivs.retain(|&(lo, hi)| lo <= hi);
        ivs.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::with_capacity(ivs.len());
        for (lo, hi) in ivs {
            match merged.last_mut() {
                Some(last) if lo <= last.1.saturating_add(1) => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        ValueSet { ivs: merged }
    }

    /// `x = lit` over raw values: NULL never matches, and a NULL literal
    /// matches nothing (SQL three-valued logic collapses to false).
    pub fn eq(lit: i64) -> ValueSet {
        if lit == NULL_I64 {
            ValueSet::empty()
        } else {
            ValueSet::point(lit)
        }
    }

    /// `x <> lit`: everything non-NULL except `lit`.
    pub fn ne(lit: i64) -> ValueSet {
        if lit == NULL_I64 {
            return ValueSet::empty();
        }
        let mut ivs = Vec::with_capacity(2);
        if lit > NON_NULL_MIN {
            ivs.push((NON_NULL_MIN, lit - 1));
        }
        if lit < i64::MAX {
            ivs.push((lit + 1, i64::MAX));
        }
        ValueSet::from_intervals(ivs)
    }

    /// `x < lit`.
    pub fn lt(lit: i64) -> ValueSet {
        if lit == NULL_I64 || lit == NON_NULL_MIN {
            return ValueSet::empty();
        }
        ValueSet::from_intervals(vec![(NON_NULL_MIN, lit - 1)])
    }

    /// `x <= lit`.
    pub fn le(lit: i64) -> ValueSet {
        if lit == NULL_I64 {
            return ValueSet::empty();
        }
        ValueSet::from_intervals(vec![(NON_NULL_MIN, lit)])
    }

    /// `x > lit`.
    pub fn gt(lit: i64) -> ValueSet {
        if lit == NULL_I64 || lit == i64::MAX {
            return ValueSet::empty();
        }
        ValueSet::from_intervals(vec![(lit + 1, i64::MAX)])
    }

    /// `x >= lit`.
    pub fn ge(lit: i64) -> ValueSet {
        if lit == NULL_I64 {
            return ValueSet::empty();
        }
        ValueSet::from_intervals(vec![(lit.max(NON_NULL_MIN), i64::MAX)])
    }

    /// `x IS NULL`: exactly the sentinel.
    pub fn is_null() -> ValueSet {
        ValueSet::point(NULL_I64)
    }

    /// Truthiness of a bare column used as a predicate: any raw value
    /// except 0 (the sentinel is nonzero, so NULL rows are kept — this
    /// mirrors block-wise evaluation exactly).
    pub fn truthy() -> ValueSet {
        ValueSet::point(0).complement()
    }

    /// Set union (predicate `OR`).
    pub fn union(&self, other: &ValueSet) -> ValueSet {
        let mut ivs = self.ivs.clone();
        ivs.extend_from_slice(&other.ivs);
        ValueSet::from_intervals(ivs)
    }

    /// Set intersection (predicate `AND`).
    pub fn intersect(&self, other: &ValueSet) -> ValueSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            let (alo, ahi) = self.ivs[i];
            let (blo, bhi) = other.ivs[j];
            let (lo, hi) = (alo.max(blo), ahi.min(bhi));
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        ValueSet { ivs: out }
    }

    /// Complement over the full `i64` domain (predicate `NOT`, which in
    /// block evaluation matches NULL rows of a comparison — the sentinel
    /// is deliberately inside the complemented domain).
    pub fn complement(&self) -> ValueSet {
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        let mut cursor = i64::MIN;
        for &(lo, hi) in &self.ivs {
            if lo > cursor {
                out.push((cursor, lo - 1));
            }
            if hi == i64::MAX {
                return ValueSet { ivs: out };
            }
            cursor = hi + 1;
        }
        out.push((cursor, i64::MAX));
        ValueSet { ivs: out }
    }

    /// Exact membership test.
    pub fn contains(&self, v: i64) -> bool {
        let idx = self.ivs.partition_point(|&(lo, _)| lo <= v);
        idx > 0 && self.ivs[idx - 1].1 >= v
    }

    /// Whether any value in `[lo, hi]` is in the set.
    pub fn overlaps(&self, lo: i64, hi: i64) -> bool {
        let idx = self.ivs.partition_point(|&(l, _)| l <= hi);
        idx > 0 && self.ivs[idx - 1].1 >= lo
    }

    /// Whether every value in `[lo, hi]` is in the set.
    pub fn covers(&self, lo: i64, hi: i64) -> bool {
        let idx = self.ivs.partition_point(|&(l, _)| l <= lo);
        idx > 0 && self.ivs[idx - 1].1 >= hi
    }

    /// True when no value matches.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// The normalized intervals.
    pub fn intervals(&self) -> &[(i64, i64)] {
        &self.ivs
    }
}

/// Which rows of one decompression block a kernel selected, in local row
/// coordinates. `Skip` lets the scan advance every cursor without
/// decoding anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockSelection {
    /// Every row of the block matches.
    All,
    /// No row matches; the block can be skipped without decoding.
    Skip,
    /// The rows in these half-open `[start, end)` local ranges match
    /// (sorted, disjoint, non-empty).
    Ranges(Vec<(usize, usize)>),
}

impl BlockSelection {
    /// Number of selected rows, given the block's row count.
    pub fn selected(&self, rows: usize) -> usize {
        match self {
            BlockSelection::All => rows,
            BlockSelection::Skip => 0,
            BlockSelection::Ranges(rs) => rs.iter().map(|&(lo, hi)| hi - lo).sum(),
        }
    }
}

/// Collapse sorted disjoint local ranges to the compact selection form.
pub fn selection_from_ranges(ranges: Vec<(usize, usize)>, rows: usize) -> BlockSelection {
    match ranges.as_slice() {
        [] => BlockSelection::Skip,
        [(0, hi)] if *hi == rows => BlockSelection::All,
        _ => BlockSelection::Ranges(ranges),
    }
}

/// What the column metadata alone decides about a pushed predicate:
/// `Some(true)` — every row matches; `Some(false)` — no row matches;
/// `None` — undecided, consult the stream kernel or fall back.
///
/// Metadata min/max exclude the NULL sentinel, so unless NULL absence is
/// proven the envelope is widened to include it — otherwise an
/// `IS NULL` predicate would be wrongly pruned.
pub fn metadata_selection(meta: &ColumnMetadata, set: &ValueSet) -> Option<bool> {
    let (mut lo, hi) = (meta.min?, meta.max?);
    if meta.has_nulls != Knowledge::False {
        lo = NULL_I64;
    }
    if !set.overlaps(lo, hi) {
        Some(false)
    } else if set.covers(lo, hi) {
        Some(true)
    } else {
        None
    }
}

/// Per-encoding evaluation strategy, chosen once per stream.
enum Strategy {
    /// Global half-open row ranges, fully resolved at build time
    /// (affine closed form, sorted-delta binary search, envelope
    /// all/none answers).
    Ranges(Vec<(u64, u64)>),
    /// Sequential run walk: one membership test per run, whole runs
    /// emitted or skipped. Blocks must be evaluated in order.
    Rle {
        set: ValueSet,
        run: usize,
        within: u64,
        pos: u64,
    },
    /// The predicate evaluated once over the dictionary entries; packed
    /// codes are then tested against the resulting code set.
    DictCodes { keep: Vec<bool>, scratch: Vec<u64> },
}

/// A compiled compressed-domain predicate evaluator for one stream.
pub struct PredicateKernel {
    strategy: Strategy,
    kind: &'static str,
}

impl PredicateKernel {
    /// Compile `set` against the stream's encoding. `None` means the
    /// shape has no exact compressed-domain answer (the caller falls
    /// back to decode-then-eval).
    pub fn build(stream: &EncodedStream, set: &ValueSet) -> Option<PredicateKernel> {
        let h = stream.header();
        let buf = stream.as_bytes();
        let n = stream.len();
        match h.algorithm {
            Algorithm::Affine => Some(build_affine(buf, n, set)?),
            Algorithm::RunLength => Some(PredicateKernel {
                strategy: Strategy::Rle {
                    set: set.clone(),
                    run: 0,
                    within: 0,
                    pos: 0,
                },
                kind: "rle-run-skip",
            }),
            Algorithm::Dictionary => {
                let keep: Vec<bool> = dict::entries(buf, &h)
                    .into_iter()
                    .map(|v| set.contains(v))
                    .collect();
                let strategy = if keep.iter().all(|&k| !k) {
                    Strategy::Ranges(Vec::new())
                } else if keep.iter().all(|&k| k) {
                    Strategy::Ranges(vec![(0, n)])
                } else {
                    Strategy::DictCodes {
                        keep,
                        scratch: Vec::new(),
                    }
                };
                Some(PredicateKernel {
                    strategy,
                    kind: "dict-domain",
                })
            }
            Algorithm::FrameOfReference => {
                let (lo, hi) = manipulate::header_envelope(stream)?;
                if !set.overlaps(lo, hi) {
                    Some(PredicateKernel {
                        strategy: Strategy::Ranges(Vec::new()),
                        kind: "for-envelope",
                    })
                } else if set.covers(lo, hi) {
                    Some(PredicateKernel {
                        strategy: Strategy::Ranges(vec![(0, n)]),
                        kind: "for-envelope",
                    })
                } else {
                    None
                }
            }
            Algorithm::Delta => {
                if !manipulate::header_proves_sorted(stream) {
                    return None;
                }
                let mut ranges = Vec::with_capacity(set.intervals().len());
                for &(lo, hi) in set.intervals() {
                    let start = lower_bound(stream, n, lo);
                    let end = upper_bound(stream, n, hi);
                    if start < end {
                        ranges.push((start, end));
                    }
                }
                Some(PredicateKernel {
                    strategy: Strategy::Ranges(merge_row_ranges(ranges)),
                    kind: "delta-sorted-range",
                })
            }
            Algorithm::None => None,
        }
    }

    /// The kernel's name, for decision traces and scan labels.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Position the kernel at absolute stream row `row` (a block
    /// boundary of a later decompression block), so ranged scans can
    /// start mid-stream. Only the RLE strategy carries position state —
    /// the others answer by `block_idx` — and it can only seek forward.
    pub fn seek(&mut self, stream: &EncodedStream, row: u64) {
        if let Strategy::Rle {
            run, within, pos, ..
        } = &mut self.strategy
        {
            debug_assert!(row >= *pos, "RLE kernel cannot seek backwards");
            let h = stream.header();
            let buf = stream.as_bytes();
            let mut remaining = row.saturating_sub(*pos);
            let mut runs = rle::run_iter_from(buf, &h, *run);
            while remaining > 0 {
                let Some((_, c)) = runs.next() else { break };
                let avail = c - *within;
                if remaining >= avail {
                    remaining -= avail;
                    *run += 1;
                    *within = 0;
                } else {
                    *within += remaining;
                    remaining = 0;
                }
            }
            *pos = row;
        }
    }

    /// Resolve the selection for decompression block `block_idx`
    /// containing `rows` logical rows. The RLE strategy is stateful:
    /// blocks must be presented in stream order.
    pub fn eval_block(
        &mut self,
        stream: &EncodedStream,
        block_idx: usize,
        rows: usize,
    ) -> BlockSelection {
        let h = stream.header();
        let start = block_idx as u64 * h.block_size as u64;
        match &mut self.strategy {
            Strategy::Ranges(rs) => {
                let end = start + rows as u64;
                let mut out = Vec::new();
                let from = rs.partition_point(|&(_, rend)| rend <= start);
                for &(rlo, rhi) in &rs[from..] {
                    if rlo >= end {
                        break;
                    }
                    let lo = rlo.max(start);
                    let hi = rhi.min(end);
                    if lo < hi {
                        out.push(((lo - start) as usize, (hi - start) as usize));
                    }
                }
                selection_from_ranges(out, rows)
            }
            Strategy::Rle {
                set,
                run,
                within,
                pos,
            } => {
                debug_assert_eq!(*pos, start, "RLE kernel blocks must arrive in order");
                let buf = stream.as_bytes();
                let mut out: Vec<(usize, usize)> = Vec::new();
                let mut at = 0usize;
                let mut runs = rle::run_iter_from(buf, &h, *run);
                while at < rows {
                    let Some((v, c)) = runs.next() else { break };
                    let avail = (c - *within) as usize;
                    let take = avail.min(rows - at);
                    if set.contains(v) {
                        match out.last_mut() {
                            Some(last) if last.1 == at => last.1 = at + take,
                            _ => out.push((at, at + take)),
                        }
                    }
                    at += take;
                    if take == avail {
                        *run += 1;
                        *within = 0;
                    } else {
                        *within += take as u64;
                    }
                }
                *pos += rows as u64;
                selection_from_ranges(out, rows)
            }
            Strategy::DictCodes { keep, scratch } => {
                scratch.clear();
                dict::decode_index_block(stream.as_bytes(), &h, block_idx, scratch);
                scratch.truncate(rows);
                let mut out: Vec<(usize, usize)> = Vec::new();
                for (i, &code) in scratch.iter().enumerate() {
                    if keep[code as usize] {
                        match out.last_mut() {
                            Some(last) if last.1 == i => last.1 = i + 1,
                            _ => out.push((i, i + 1)),
                        }
                    }
                }
                selection_from_ranges(out, rows)
            }
        }
    }
}

/// First row with value >= `target` in a sorted stream.
fn lower_bound(stream: &EncodedStream, n: u64, target: i64) -> u64 {
    let (mut lo, mut hi) = (0u64, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if stream.get(mid) < target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First row with value > `target` in a sorted stream.
fn upper_bound(stream: &EncodedStream, n: u64, target: i64) -> u64 {
    let (mut lo, mut hi) = (0u64, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if stream.get(mid) <= target {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

fn merge_row_ranges(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match merged.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

fn build_affine(buf: &[u8], n: u64, set: &ValueSet) -> Option<PredicateKernel> {
    let base = affine::base(buf);
    let delta = affine::delta(buf);
    if n == 0 {
        return Some(PredicateKernel {
            strategy: Strategy::Ranges(Vec::new()),
            kind: "affine-closed-form",
        });
    }
    // The progression must be exact in i64 for the closed form to equal
    // the decoded values; a wrapped stream falls back.
    let last = (base as i128) + (delta as i128) * ((n - 1) as i128);
    if last < i64::MIN as i128 || last > i64::MAX as i128 {
        return None;
    }
    if delta == 0 {
        let ranges = if set.contains(base) {
            vec![(0, n)]
        } else {
            Vec::new()
        };
        return Some(PredicateKernel {
            strategy: Strategy::Ranges(ranges),
            kind: "affine-const",
        });
    }
    let (b, d) = (base as i128, delta as i128);
    let mut ranges = Vec::with_capacity(set.intervals().len());
    for &(lo, hi) in set.intervals() {
        // Solve lo <= b + r*d <= hi for integer r in [0, n).
        let (lo, hi) = (lo as i128, hi as i128);
        let (rlo, rhi) = if d > 0 {
            (ceil_div(lo - b, d), floor_div(hi - b, d))
        } else {
            (ceil_div(hi - b, d), floor_div(lo - b, d))
        };
        let rlo = rlo.max(0);
        let rhi = rhi.min(n as i128 - 1);
        if rlo <= rhi {
            ranges.push((rlo as u64, rhi as u64 + 1));
        }
    }
    Some(PredicateKernel {
        strategy: Strategy::Ranges(merge_row_ranges(ranges)),
        kind: "affine-closed-form",
    })
}

fn floor_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i128, b: i128) -> i128 {
    let q = a / b;
    if a % b != 0 && (a < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BLOCK_SIZE;
    use tde_types::Width;

    fn append_all(s: &mut EncodedStream, data: &[i64]) {
        for chunk in data.chunks(BLOCK_SIZE) {
            s.append_block(chunk).unwrap();
        }
    }

    /// Reference evaluation: decode everything, test every row.
    fn oracle_rows(stream: &EncodedStream, set: &ValueSet) -> Vec<u64> {
        stream
            .decode_all()
            .iter()
            .enumerate()
            .filter(|(_, &v)| set.contains(v))
            .map(|(i, _)| i as u64)
            .collect()
    }

    fn kernel_rows(stream: &EncodedStream, set: &ValueSet) -> Option<Vec<u64>> {
        let mut k = PredicateKernel::build(stream, set)?;
        let h = stream.header();
        let n = stream.len() as usize;
        let mut out = Vec::new();
        let mut block = 0usize;
        let mut done = 0usize;
        while done < n {
            let rows = (n - done).min(h.block_size);
            let start = done as u64;
            match k.eval_block(stream, block, rows) {
                BlockSelection::All => out.extend(start..start + rows as u64),
                BlockSelection::Skip => {}
                BlockSelection::Ranges(rs) => {
                    for (lo, hi) in rs {
                        out.extend(start + lo as u64..start + hi as u64);
                    }
                }
            }
            done += rows;
            block += 1;
        }
        Some(out)
    }

    #[test]
    fn value_set_normalizes_and_tests() {
        let s = ValueSet::from_intervals(vec![(5, 9), (1, 3), (4, 4), (20, 25)]);
        assert_eq!(s.intervals(), &[(1, 9), (20, 25)]);
        assert!(s.contains(1) && s.contains(9) && s.contains(22));
        assert!(!s.contains(0) && !s.contains(10) && !s.contains(26));
        assert!(s.overlaps(10, 20) && !s.overlaps(10, 19));
        assert!(s.covers(2, 9) && !s.covers(2, 10));
    }

    #[test]
    fn value_set_logic_matches_expression_semantics() {
        // NOT (x = 5) is true on NULL rows: the complement contains the sentinel.
        let not_eq = ValueSet::eq(5).complement();
        assert!(not_eq.contains(NULL_I64));
        assert!(!not_eq.contains(5));
        // x <> 5 is false on NULL rows.
        assert!(!ValueSet::ne(5).contains(NULL_I64));
        // Comparisons against a NULL literal match nothing.
        assert!(ValueSet::ge(NULL_I64).is_empty());
        // AND / OR distribute as intersect / union.
        let between = ValueSet::ge(10).intersect(&ValueSet::le(20));
        assert_eq!(between.intervals(), &[(10, 20)]);
        let either = ValueSet::eq(1).union(&ValueSet::eq(2));
        assert_eq!(either.intervals(), &[(1, 2)]);
        // Domain-edge literals.
        assert!(ValueSet::lt(i64::MIN + 1).is_empty());
        assert!(ValueSet::gt(i64::MAX).is_empty());
        assert_eq!(
            ValueSet::le(i64::MAX).intervals(),
            &[(i64::MIN + 1, i64::MAX)]
        );
        assert!(ValueSet::truthy().contains(NULL_I64));
        assert!(!ValueSet::truthy().contains(0));
        assert_eq!(ValueSet::full().complement(), ValueSet::empty());
        assert_eq!(ValueSet::empty().complement(), ValueSet::full());
    }

    #[test]
    fn affine_closed_form_matches_oracle() {
        for (base, delta, n) in [
            (100i64, 3i64, 2500u64),
            (50, -7, 999),
            (42, 0, 10),
            (0, 1, 1),
        ] {
            let mut s = EncodedStream::new_affine(Width::W8, true, base, delta);
            let data: Vec<i64> = (0..n as i64).map(|i| base + i * delta).collect();
            append_all(&mut s, &data);
            for set in [
                ValueSet::ge(100).intersect(&ValueSet::le(400)),
                ValueSet::eq(base),
                ValueSet::lt(-1000),
                ValueSet::ne(103),
                ValueSet::eq(5), // not on the progression unless it is
            ] {
                assert_eq!(
                    kernel_rows(&s, &set).expect("affine kernel"),
                    oracle_rows(&s, &set),
                    "base={base} delta={delta} n={n}"
                );
            }
        }
    }

    #[test]
    fn rle_run_skip_matches_oracle() {
        let mut data = Vec::new();
        for v in 0..80i64 {
            data.extend(std::iter::repeat_n(v % 7, 29 + (v as usize % 13)));
        }
        data.push(NULL_I64);
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8);
        append_all(&mut s, &data);
        for set in [
            ValueSet::eq(3),
            ValueSet::ne(3),
            ValueSet::is_null(),
            ValueSet::eq(3).complement(),
            ValueSet::gt(4),
        ] {
            assert_eq!(
                kernel_rows(&s, &set).expect("rle kernel"),
                oracle_rows(&s, &set)
            );
        }
    }

    #[test]
    fn kernel_seek_positions_mid_stream() {
        // Run lengths chosen so runs straddle block boundaries and a
        // seek regularly lands mid-run.
        let mut data = Vec::new();
        for v in 0..50i64 {
            data.extend(std::iter::repeat_n(v % 5, 37 + (v as usize % 11)));
        }
        let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W8);
        append_all(&mut s, &data);
        let set = ValueSet::eq(2).union(&ValueSet::eq(4));
        let h = s.header();
        let n = s.len() as usize;
        let nblocks = n.div_ceil(h.block_size);
        // Reference: one kernel walked in order from row zero.
        let mut reference = Vec::new();
        let mut k = PredicateKernel::build(&s, &set).unwrap();
        let mut done = 0usize;
        for b in 0..nblocks {
            let rows = (n - done).min(h.block_size);
            reference.push(k.eval_block(&s, b, rows));
            done += rows;
        }
        // From every start block: a fresh kernel seeked there must
        // continue exactly like the in-order walk.
        for start in 0..nblocks {
            let mut k = PredicateKernel::build(&s, &set).unwrap();
            k.seek(&s, (start * h.block_size) as u64);
            let mut done = start * h.block_size;
            for (b, expected) in reference.iter().enumerate().skip(start) {
                let rows = (n - done).min(h.block_size);
                assert_eq!(
                    &k.eval_block(&s, b, rows),
                    expected,
                    "start={start} block={b}"
                );
                done += rows;
            }
        }
        // Seek is a no-op on block-indexed strategies.
        let affine_data: Vec<i64> = (0..3000).map(|i| i * 3).collect();
        let mut aff = EncodedStream::new_affine(Width::W8, true, 0, 3);
        append_all(&mut aff, &affine_data);
        let mut k = PredicateKernel::build(&aff, &ValueSet::ge(0)).unwrap();
        k.seek(&aff, BLOCK_SIZE as u64);
        let rows = affine_data.len() - BLOCK_SIZE;
        assert_eq!(k.eval_block(&aff, 1, rows), BlockSelection::All);
    }

    #[test]
    fn dict_domain_matches_oracle() {
        let domain = [7i64, -4, 1_000_000, NULL_I64, 12];
        let data: Vec<i64> = (0..3000).map(|i| domain[i % domain.len()]).collect();
        let mut s = EncodedStream::new_dict(Width::W8, true, 3);
        append_all(&mut s, &data);
        for set in [
            ValueSet::eq(7),
            ValueSet::is_null(),
            ValueSet::ge(0),
            ValueSet::eq(7).complement(),
            ValueSet::lt(-100),
            ValueSet::full(),
        ] {
            let k = PredicateKernel::build(&s, &set).expect("dict kernel");
            assert_eq!(k.kind(), "dict-domain");
            assert_eq!(kernel_rows(&s, &set).unwrap(), oracle_rows(&s, &set));
        }
    }

    #[test]
    fn frame_envelope_decides_or_declines() {
        let data: Vec<i64> = (0..2000).map(|i| 500 + (i % 100)).collect();
        let mut s = EncodedStream::new_frame(Width::W8, true, 500, 7);
        append_all(&mut s, &data);
        // Envelope is [500, 627]; a disjoint set skips everything.
        let set = ValueSet::gt(10_000);
        let k = PredicateKernel::build(&s, &set).expect("skip");
        assert_eq!(k.kind(), "for-envelope");
        assert_eq!(kernel_rows(&s, &set).unwrap(), Vec::<u64>::new());
        // A covering set keeps everything.
        let set = ValueSet::ge(0);
        assert_eq!(
            kernel_rows(&s, &set).unwrap(),
            (0..2000u64).collect::<Vec<_>>()
        );
        // Partial overlap has no exact envelope answer.
        assert!(PredicateKernel::build(&s, &ValueSet::eq(550)).is_none());
    }

    #[test]
    fn sorted_delta_binary_searches_ranges() {
        let data: Vec<i64> = (0..5000).map(|i| i / 3).collect();
        let mut s = EncodedStream::new_delta(Width::W8, true, 0, 1);
        append_all(&mut s, &data);
        for set in [
            ValueSet::ge(100).intersect(&ValueSet::lt(200)),
            ValueSet::eq(0),
            ValueSet::eq(1666),
            ValueSet::gt(1_000_000),
            ValueSet::eq(7).union(&ValueSet::eq(1000)),
        ] {
            let k = PredicateKernel::build(&s, &set).expect("delta kernel");
            assert_eq!(k.kind(), "delta-sorted-range");
            assert_eq!(kernel_rows(&s, &set).unwrap(), oracle_rows(&s, &set));
        }
    }

    #[test]
    fn metadata_envelope_respects_possible_nulls() {
        let mut meta = ColumnMetadata::unknown();
        meta.min = Some(10);
        meta.max = Some(20);
        // NULL presence unknown: IS NULL must not be pruned.
        assert_eq!(metadata_selection(&meta, &ValueSet::is_null()), None);
        assert_eq!(metadata_selection(&meta, &ValueSet::gt(100)), Some(false));
        // Proven no NULLs: the envelope tightens.
        meta.has_nulls = Knowledge::False;
        assert_eq!(metadata_selection(&meta, &ValueSet::is_null()), Some(false));
        assert_eq!(metadata_selection(&meta, &ValueSet::ge(0)), Some(true));
        assert_eq!(metadata_selection(&meta, &ValueSet::ge(15)), None);
    }
}

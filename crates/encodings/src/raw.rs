//! Unencoded storage: fixed-width values, no compression.
//!
//! This is both the `encodings off` baseline and the fallback when no
//! lightweight encoding pays for itself. It shares the common header so
//! the rest of the system is oblivious to whether a stream is encoded.

use crate::header::{self, HeaderView};
use tde_types::Width;

/// Create an empty raw stream buffer.
pub fn new_stream(width: Width, block_size: usize, signed: bool) -> Vec<u8> {
    header::make_common(crate::Algorithm::None, width, 0, block_size, signed, 0)
}

/// Append one block (padded to a full physical block with zero bytes).
pub fn append_block(buf: &mut Vec<u8>, h: &HeaderView, vals: &[i64]) {
    let w = h.width;
    buf.reserve(h.block_size * w.bytes());
    for &v in vals {
        let bytes = v.to_le_bytes();
        buf.extend_from_slice(&bytes[..w.bytes()]);
    }
    // Pad the physical block.
    let pad = (h.block_size - vals.len()) * w.bytes();
    buf.extend(std::iter::repeat_n(0u8, pad));
}

/// Decode a full physical block.
pub fn decode_block(buf: &[u8], h: &HeaderView, block_idx: usize, out: &mut Vec<i64>) {
    let w = h.width;
    let start = h.data_offset + block_idx * h.block_size * w.bytes();
    out.reserve(h.block_size);
    for i in 0..h.block_size {
        out.push(header::get_fixed(buf, start + i * w.bytes(), w, h.signed));
    }
}

/// Random access.
pub fn get(buf: &[u8], h: &HeaderView, idx: u64) -> i64 {
    let w = h.width;
    let off = h.data_offset + idx as usize * w.bytes();
    header::get_fixed(buf, off, w, h.signed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncodedStream;

    #[test]
    fn unsigned_raw_does_not_sign_extend() {
        let mut s = EncodedStream::new_raw(Width::W1, false);
        s.append_block(&[200, 255, 0]).unwrap();
        assert_eq!(s.decode_all(), vec![200, 255, 0]);
    }

    #[test]
    fn physical_size_is_width_times_blocks() {
        let mut s = EncodedStream::new_raw(Width::W2, true);
        let block: Vec<i64> = (0..crate::BLOCK_SIZE as i64).collect();
        s.append_block(&block).unwrap();
        let h = s.header();
        assert_eq!(s.physical_size() - h.data_offset, crate::BLOCK_SIZE * 2);
    }
}

//! Dynamic encoding (paper §3.2).
//!
//! Columns are encoded one block at a time. Block values update the
//! column's statistics *before* the block is inserted into the encoding
//! stream; if the insert fails (a value outside the representable range,
//! a full dictionary, a broken affine progression) the encoder consults
//! the statistics, chooses a new encoding, and rewrites the stream. When
//! all rows have been processed the current encoding can be compared with
//! the optimal one and converted if that saves space.
//!
//! The paper reports that encodings stabilize quickly — loading TPC-H
//! lineitem at SF-1 caused only two encoding changes — which experiment E9
//! (`dynamic_stability` bench) reproduces on our generator.

use crate::stats::{choose_encoding_with, AllowedAlgorithms, ColumnStats, EncodingSpec};
use crate::{EncodedStream, EncodingFull, BLOCK_SIZE};
use tde_types::Width;

/// Streaming encoder that adapts its encoding to the data (paper §3.2).
#[derive(Debug)]
pub struct DynamicEncoder {
    stats: ColumnStats,
    stream: Option<EncodedStream>,
    spec: EncodingSpec,
    width: Width,
    signed: bool,
    allow: AllowedAlgorithms,
    reencodings: u32,
    enabled: bool,
    prefer_dictionary: bool,
    label: String,
}

/// The finished column stream plus everything learned while building it.
#[derive(Debug)]
pub struct EncodeResult {
    /// The encoded stream.
    pub stream: EncodedStream,
    /// Final statistics over every inserted value.
    pub stats: ColumnStats,
    /// How many mid-load encoding changes occurred.
    pub reencodings: u32,
    /// Whether the end-of-load conversion to the optimal format fired.
    pub final_converted: bool,
}

impl DynamicEncoder {
    /// A new encoder for a column of `width`-byte values. `enabled = false`
    /// gives the "encodings off" baseline: raw storage, statistics still
    /// tracked (they come almost for free and the figures compare both).
    pub fn new(width: Width, signed: bool, allow: AllowedAlgorithms, enabled: bool) -> Self {
        DynamicEncoder {
            stats: ColumnStats::new(),
            stream: None,
            spec: EncodingSpec::None,
            width,
            signed,
            allow,
            reencodings: 0,
            enabled,
            prefer_dictionary: false,
            label: String::new(),
        }
    }

    /// Prefer dictionary encoding whenever the domain fits — used for
    /// string heap token streams (paper §6.3).
    pub fn prefer_dictionary(mut self) -> Self {
        self.prefer_dictionary = true;
        self
    }

    /// Label re-encoding events with a column name (observability only;
    /// encoding behaviour is unchanged).
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Convenience: encoder with every algorithm allowed.
    pub fn with_defaults(width: Width, signed: bool) -> Self {
        DynamicEncoder::new(width, signed, AllowedAlgorithms::all(), true)
    }

    /// Values inserted so far.
    pub fn len(&self) -> u64 {
        self.stats.count
    }

    /// Whether nothing has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.stats.count == 0
    }

    /// Mid-load encoding changes so far.
    pub fn reencodings(&self) -> u32 {
        self.reencodings
    }

    /// Current statistics.
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// Current encoding spec.
    pub fn current_spec(&self) -> EncodingSpec {
        self.spec
    }

    /// Insert one block of values (at most [`BLOCK_SIZE`]; a short block
    /// must be the last).
    pub fn append_block(&mut self, vals: &[i64]) {
        if vals.is_empty() {
            return;
        }
        if !self.enabled {
            // "Encodings off" baseline: raw storage, no statistics work
            // beyond the row count (the statistics *are* part of the
            // encoding machinery whose cost Fig 4 measures).
            self.stats.count += vals.len() as u64;
            let stream = self
                .stream
                .get_or_insert_with(|| EncodingSpec::None.build(self.width, self.signed));
            stream.append_block(vals).expect("raw append cannot fail");
            return;
        }
        self.stats.update(vals);
        if self.stream.is_none() {
            // First block: pick the initial encoding from its statistics.
            self.spec = if self.enabled {
                choose_encoding_with(
                    &self.stats,
                    self.width,
                    self.allow,
                    false,
                    self.prefer_dictionary,
                )
            } else {
                EncodingSpec::None
            };
            self.stream = Some(self.spec.build(self.width, self.signed));
        }
        let stream = self.stream.as_mut().expect("stream initialized above");
        match stream.append_block(vals) {
            Ok(()) => {}
            Err(EncodingFull::Sealed) => panic!("append after a partial (sealing) block"),
            Err(_) => self.reencode_with(vals),
        }
    }

    /// The insert failed: choose a new encoding from the statistics (which
    /// already include the failed block) and rewrite the stream.
    fn reencode_with(&mut self, vals: &[i64]) {
        self.reencodings += 1;
        let mut existing = self
            .stream
            .as_ref()
            .expect("reencode without stream")
            .decode_all();
        existing.extend_from_slice(vals);
        let from = self.spec;
        self.spec = choose_encoding_with(
            &self.stats,
            self.width,
            self.allow,
            false,
            self.prefer_dictionary,
        );
        tde_obs::metrics::reencode("mid-load");
        tde_obs::emit(|| tde_obs::Event::Reencode {
            column: self.label.clone(),
            from: format!("{from:?}"),
            to: format!("{:?}", self.spec),
            rows: self.stats.count,
            kind: tde_obs::ReencodeKind::MidLoad,
        });
        let mut fresh = self.spec.build(self.width, self.signed);
        for chunk in existing.chunks(BLOCK_SIZE) {
            fresh
                .append_block(chunk)
                .expect("encoding chosen from covering statistics must accept all values");
        }
        self.stream = Some(fresh);
    }

    /// Finish the column. With `convert_to_optimal`, compare the current
    /// encoding with the optimal one for the final statistics and convert
    /// if it is physically smaller (paper §3.2).
    pub fn finish(mut self, convert_to_optimal: bool) -> EncodeResult {
        let mut stream = self
            .stream
            .take()
            .unwrap_or_else(|| EncodedStream::new_raw(self.width, self.signed));
        let mut final_converted = false;
        if convert_to_optimal && self.enabled && !stream.is_empty() {
            let optimal = choose_encoding_with(
                &self.stats,
                self.width,
                self.allow,
                true,
                self.prefer_dictionary,
            );
            if optimal != self.spec {
                let mut fresh = optimal.build(self.width, self.signed);
                for chunk in stream.decode_all().chunks(BLOCK_SIZE) {
                    fresh
                        .append_block(chunk)
                        .expect("optimal encoding must accept all values");
                }
                if fresh.physical_size() < stream.physical_size() {
                    tde_obs::metrics::reencode("final-convert");
                    tde_obs::emit(|| tde_obs::Event::Reencode {
                        column: self.label.clone(),
                        from: format!("{:?}", self.spec),
                        to: format!("{optimal:?}"),
                        rows: self.stats.count,
                        kind: tde_obs::ReencodeKind::FinalConvert,
                    });
                    stream = fresh;
                    self.spec = optimal;
                    final_converted = true;
                }
            }
        }
        EncodeResult {
            stream,
            stats: self.stats,
            reencodings: self.reencodings,
            final_converted,
        }
    }
}

/// Encode a whole slice in one call (tests, small columns, AlterColumn).
pub fn encode_all(vals: &[i64], width: Width, signed: bool) -> EncodeResult {
    let mut enc = DynamicEncoder::with_defaults(width, signed);
    for chunk in vals.chunks(BLOCK_SIZE) {
        enc.append_block(chunk);
    }
    enc.finish(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algorithm;

    #[test]
    fn roundtrips_arbitrary_data() {
        let vals: Vec<i64> = (0..10_000)
            .map(|i| if i % 100 == 0 { i * 1_000_003 } else { i % 50 })
            .collect();
        let r = encode_all(&vals, Width::W8, true);
        assert_eq!(r.stream.decode_all(), vals);
        assert_eq!(r.stats.count, 10_000);
    }

    #[test]
    fn sequence_lands_on_affine() {
        let vals: Vec<i64> = (0..5000).collect();
        let r = encode_all(&vals, Width::W8, true);
        assert_eq!(r.stream.algorithm(), Algorithm::Affine);
        assert_eq!(r.reencodings, 0);
        assert_eq!(r.stream.decode_all(), vals);
    }

    #[test]
    fn affine_broken_mid_load_reencodes() {
        // The first blocks look affine; a later block breaks it.
        let mut vals: Vec<i64> = (0..4096).collect();
        vals.extend([9999i64, 4097, 4098]);
        let mut enc = DynamicEncoder::with_defaults(Width::W8, true);
        for chunk in vals.chunks(BLOCK_SIZE) {
            enc.append_block(chunk);
        }
        assert!(enc.reencodings() >= 1);
        let r = enc.finish(true);
        assert_eq!(r.stream.decode_all(), vals);
    }

    #[test]
    fn dictionary_growth_then_overflow() {
        // First block has 8 distinct wide values (dict, ~4 bits with
        // headroom); later blocks add thousands of distinct values, forcing
        // re-encodes and eventually a non-dictionary format.
        let mut vals: Vec<i64> = (0..1024).map(|i| (i % 8) * 1_000_000_007).collect();
        vals.extend((0..60_000).map(|i| i * 1_000_003));
        let mut enc = DynamicEncoder::with_defaults(Width::W8, true);
        for chunk in vals.chunks(BLOCK_SIZE) {
            enc.append_block(chunk);
        }
        let r = enc.finish(true);
        assert_eq!(r.stream.decode_all(), vals);
        assert_ne!(r.stream.algorithm(), Algorithm::Dictionary);
    }

    #[test]
    fn encodings_disabled_stays_raw() {
        let vals: Vec<i64> = (0..3000).collect(); // would be affine
        let mut enc = DynamicEncoder::new(Width::W8, true, AllowedAlgorithms::all(), false);
        for chunk in vals.chunks(BLOCK_SIZE) {
            enc.append_block(chunk);
        }
        let r = enc.finish(true);
        assert_eq!(r.stream.algorithm(), Algorithm::None);
        assert_eq!(r.stream.decode_all(), vals);
        // With encodings off, no statistics beyond the count are gathered
        // (that work is part of the encoding path Fig 4 measures).
        assert_eq!(r.stats.count, 3000);
        assert!(r.stats.cardinality().is_none_or(|c| c == 0));
    }

    #[test]
    fn final_conversion_shrinks_stream() {
        // Growth-pass dictionary keeps a headroom bit; the final pass drops
        // it (or moves to FoR) and must only convert when smaller.
        let vals: Vec<i64> = (0..50_000).map(|i| (i % 1000) * 12_345_678_901).collect();
        let mut enc = DynamicEncoder::with_defaults(Width::W8, true);
        for chunk in vals.chunks(BLOCK_SIZE) {
            enc.append_block(chunk);
        }
        let before = enc.stream.as_ref().unwrap().physical_size();
        let r = enc.finish(true);
        assert!(r.stream.physical_size() <= before);
        assert_eq!(r.stream.decode_all(), vals);
    }

    #[test]
    fn restricted_algorithms_respected() {
        let mut vals = Vec::new();
        for v in 0..5i64 {
            vals.extend(std::iter::repeat_n(v, 10_000));
        }
        let mut enc =
            DynamicEncoder::new(Width::W8, true, AllowedAlgorithms::random_access(), true);
        for chunk in vals.chunks(BLOCK_SIZE) {
            enc.append_block(chunk);
        }
        let r = enc.finish(true);
        assert_ne!(r.stream.algorithm(), Algorithm::RunLength);
        assert_eq!(r.stream.decode_all(), vals);
    }

    #[test]
    fn empty_encoder_finishes() {
        let enc = DynamicEncoder::with_defaults(Width::W8, true);
        let r = enc.finish(true);
        assert!(r.stream.is_empty());
    }

    #[test]
    fn partial_final_block() {
        let vals: Vec<i64> = (0..1500).collect();
        let r = encode_all(&vals, Width::W8, true);
        assert_eq!(r.stream.len(), 1500);
        assert_eq!(r.stream.decode_all(), vals);
    }
}

//! A small cuckoo hash map from values to dictionary indexes.
//!
//! The dictionary encoding limits itself to 2¹⁵ values partly "to keep the
//! dictionary in cache and make the compression cuckoo hash table
//! implementation simple and fast" (paper §3.1.3). Two multiply-shift hash
//! functions over a single slot array; inserts evict along a bounded walk
//! and rehash into a doubled table when the walk fails.

/// Maps `i64` values to `u16` dictionary indexes.
#[derive(Debug, Clone)]
pub struct CuckooMap {
    slots: Vec<Option<(i64, u16)>>,
    shift: u32,
    len: usize,
}

const MAX_KICKS: usize = 64;
const H1_MUL: u64 = 0x9E37_79B9_7F4A_7C15;
const H2_MUL: u64 = 0xC2B2_AE3D_27D4_EB4F;

impl CuckooMap {
    /// Create a map sized for roughly `expected` entries (the table keeps a
    /// load factor of at most ½, the regime where cuckoo insertion whp
    /// succeeds quickly).
    pub fn with_capacity(expected: usize) -> CuckooMap {
        let cap = (expected.max(8) * 2).next_power_of_two();
        CuckooMap {
            slots: vec![None; cap],
            shift: 64 - cap.trailing_zeros(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn h1(&self, key: i64) -> usize {
        ((key as u64).wrapping_mul(H1_MUL) >> self.shift) as usize
    }

    #[inline]
    fn h2(&self, key: i64) -> usize {
        ((key as u64).wrapping_mul(H2_MUL) >> self.shift) as usize
    }

    /// Look up the index for `key`.
    #[inline]
    pub fn get(&self, key: i64) -> Option<u16> {
        if let Some((k, v)) = self.slots[self.h1(key)] {
            if k == key {
                return Some(v);
            }
        }
        if let Some((k, v)) = self.slots[self.h2(key)] {
            if k == key {
                return Some(v);
            }
        }
        None
    }

    /// Insert `key -> index`. The key must not already be present.
    pub fn insert(&mut self, key: i64, index: u16) {
        debug_assert!(self.get(key).is_none(), "duplicate cuckoo insert");
        self.len += 1;
        if self.len * 2 > self.slots.len() {
            self.grow();
        }
        let mut entry = (key, index);
        loop {
            match self.try_place(entry) {
                None => return,
                Some(evicted) => {
                    entry = evicted;
                    self.grow();
                }
            }
        }
    }

    /// Attempt a bounded cuckoo walk; returns the homeless entry on failure.
    fn try_place(&mut self, mut entry: (i64, u16)) -> Option<(i64, u16)> {
        let mut slot = self.h1(entry.0);
        for kick in 0..MAX_KICKS {
            match self.slots[slot].replace(entry) {
                None => return None,
                Some(evicted) => {
                    entry = evicted;
                    // Move the evicted entry to its alternate slot.
                    let alt1 = self.h1(entry.0);
                    slot = if slot == alt1 { self.h2(entry.0) } else { alt1 };
                    let _ = kick;
                }
            }
        }
        Some(entry)
    }

    /// Double the table and re-place every entry.
    fn grow(&mut self) {
        loop {
            let old = std::mem::replace(&mut self.slots, vec![None; 0]);
            self.slots = vec![None; old.len() * 2];
            self.shift -= 1;
            let mut ok = true;
            for e in old.into_iter().flatten() {
                if self.try_place(e).is_some() {
                    ok = false;
                    break;
                }
            }
            if ok {
                return;
            }
            // Pathological collision set: double again.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut m = CuckooMap::with_capacity(16);
        for i in 0..100i64 {
            m.insert(i * 7919, i as u16);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100i64 {
            assert_eq!(m.get(i * 7919), Some(i as u16));
        }
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn full_dictionary_domain() {
        // The paper's worst case: 2^15 distinct values.
        let mut m = CuckooMap::with_capacity(1 << 15);
        for i in 0..(1u16 << 15) {
            m.insert(i64::from(i) * 1_000_003 - 5_000_000, i);
        }
        for i in 0..(1u16 << 15) {
            assert_eq!(m.get(i64::from(i) * 1_000_003 - 5_000_000), Some(i));
        }
    }

    #[test]
    fn negative_and_extreme_keys() {
        let mut m = CuckooMap::with_capacity(8);
        for (n, k) in [i64::MIN, i64::MAX, -1, 0, 1].into_iter().enumerate() {
            m.insert(k, n as u16);
        }
        assert_eq!(m.get(i64::MIN), Some(0));
        assert_eq!(m.get(i64::MAX), Some(1));
        assert_eq!(m.get(-1), Some(2));
        assert_eq!(m.get(2), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = CuckooMap::with_capacity(4);
        for i in 0..1000i64 {
            m.insert(i, (i % 65536) as u16);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(999), Some(999));
    }
}

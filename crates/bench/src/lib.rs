//! Shared harness for the figure benchmarks (paper §5–6).
//!
//! Every bench target regenerates one of the paper's tables or figures
//! (see DESIGN.md §3 for the experiment index). The harness provides the
//! common machinery: scale configuration via environment variables,
//! cached workload files, import-policy construction for the paper's
//! encoding/acceleration axes, and the 12-runs-drop-extremes timing
//! protocol of §6.6.
//!
//! Scale knobs (environment variables):
//!
//! * `TDE_SF` — TPC-H scale factor for the "SF-1 tables" set (default 0.02)
//! * `TDE_SF_LARGE` — scale factor for the large lineitem (default 0.05)
//! * `TDE_FLIGHTS_ROWS` — rows in the Flights file (default 200 000)
//! * `TDE_RLE_SMALL` / `TDE_RLE_LARGE` — RLE table rows (default 1 M / 16 M)
//! * `TDE_REPS` — timing repetitions (default 5; the paper used 12)

pub mod gate;

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};
use tde_datagen::tpch::{self, TpchTable};
use tde_datagen::{flights, rle};
use tde_storage::{Column, ColumnBuilder, EncodingPolicy, Table};
use tde_textscan::{ImportOptions, ScanMode};
use tde_types::DataType;

/// Scale configuration, from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// TPC-H scale factor for the small table set.
    pub sf: f64,
    /// Scale factor for the large lineitem.
    pub sf_large: f64,
    /// Rows in the Flights file.
    pub flights_rows: u64,
    /// Rows in the small RLE table.
    pub rle_small: u64,
    /// Rows in the large RLE table.
    pub rle_large: u64,
    /// Timing repetitions.
    pub reps: usize,
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        Scale {
            sf: env_f64("TDE_SF", 0.02),
            sf_large: env_f64("TDE_SF_LARGE", 0.05),
            flights_rows: env_u64("TDE_FLIGHTS_ROWS", 200_000),
            rle_small: env_u64("TDE_RLE_SMALL", 1_000_000),
            rle_large: env_u64("TDE_RLE_LARGE", 16_000_000),
            reps: env_u64("TDE_REPS", 5) as usize,
        }
    }
}

/// Directory where generated workload files are cached between runs.
pub fn data_dir() -> PathBuf {
    let d = std::env::temp_dir().join("tde_bench_data");
    std::fs::create_dir_all(&d).expect("create bench data dir");
    d
}

/// Generate (or reuse) the TPC-H text files at `sf`. Returns the dir.
pub fn tpch_files(sf: f64) -> PathBuf {
    let dir = data_dir().join(format!("tpch_sf{sf}"));
    let marker = dir.join(".complete");
    if !marker.exists() {
        std::fs::create_dir_all(&dir).unwrap();
        tpch::write_all(&dir, sf, 42).expect("generate TPC-H files");
        std::fs::write(&marker, b"ok").unwrap();
    }
    dir
}

/// Generate (or reuse) the Flights text file with `rows` rows.
pub fn flights_file(rows: u64) -> PathBuf {
    let path = data_dir().join(format!("flights_{rows}.csv"));
    if !path.exists() {
        flights::write_file(&path, rows, 7).expect("generate flights file");
    }
    path
}

/// Import options for one cell of the paper's encoding × acceleration
/// grid, with the table's ground-truth schema supplied (the experiments
/// measure encoding, not inference).
pub fn import_options(
    table: TpchTable,
    encodings: bool,
    acceleration: bool,
    mode: ScanMode,
) -> ImportOptions {
    let schema = table
        .schema()
        .into_iter()
        .map(|(n, t)| (n.to_owned(), t))
        .collect();
    ImportOptions {
        policy: policy(encodings, acceleration),
        schema: Some(schema),
        has_header: Some(false),
        parallel: true,
        mode,
        table_name: table.name().to_owned(),
        ..Default::default()
    }
}

/// The encoding policy for one grid cell.
pub fn policy(encodings: bool, acceleration: bool) -> EncodingPolicy {
    EncodingPolicy {
        encodings,
        acceleration,
        sort_heaps: encodings,
        narrow: encodings,
        ..EncodingPolicy::default()
    }
}

/// Import options for the Flights file (schema inferred from its header).
pub fn flights_options(encodings: bool, acceleration: bool, mode: ScanMode) -> ImportOptions {
    ImportOptions {
        policy: policy(encodings, acceleration),
        mode,
        table_name: "flights".to_owned(),
        ..Default::default()
    }
}

/// The §6.6 timing protocol: run `reps` times, drop the two extremes when
/// there are enough samples, average the rest.
pub fn measure(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut times: Vec<Duration> = (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    let trimmed: &[Duration] = if times.len() >= 4 {
        &times[1..times.len() - 1]
    } else {
        &times
    };
    trimmed.iter().sum::<Duration>() / trimmed.len() as u32
}

/// Build the §5.3 artificial run-length table: primary and secondary
/// columns, sorted on both.
pub fn build_rle_table(rows: u64, seed: u64) -> std::sync::Arc<Table> {
    let spec = rle::RleTable::generate(rows, seed);
    let build = |runs: Vec<(i64, u64)>, name: &str| -> Column {
        let mut b = ColumnBuilder::new(name, DataType::Integer, EncodingPolicy::default());
        let mut block = Vec::with_capacity(tde_encodings::BLOCK_SIZE);
        for (v, c) in runs {
            for _ in 0..c {
                block.push(v);
                if block.len() == tde_encodings::BLOCK_SIZE {
                    b.append_raw(&block);
                    block.clear();
                }
            }
        }
        b.append_raw(&block);
        b.finish().column
    };
    std::sync::Arc::new(Table::new(
        "rle",
        vec![
            build(spec.primary_runs(), "primary"),
            build(spec.secondary_runs(), "secondary"),
        ],
    ))
}

/// Directory where figure harnesses dump machine-readable results
/// (`bench_results/BENCH_<figure>.json`), overridable with
/// `TDE_BENCH_RESULTS`.
pub fn results_dir() -> PathBuf {
    // `cargo bench` runs harnesses with the crate directory as cwd, so
    // anchor the default at the workspace root, not the working dir.
    let d = std::env::var("TDE_BENCH_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results"));
    std::fs::create_dir_all(&d).expect("create bench results dir");
    d
}

/// Report provenance captured once per harness run: which commit, when,
/// on how many threads. This is what makes `bench_results/` comparable
/// across PRs — `bench-gate` refuses nothing but warns on mismatched
/// thread counts, and trend tooling groups by `git_sha`.
#[derive(Debug, Clone)]
pub struct ReportMeta {
    /// `HEAD` commit (from `TDE_GIT_SHA`, else `git rev-parse HEAD`,
    /// else `"unknown"`).
    pub git_sha: String,
    /// Wall-clock UTC timestamp, ISO 8601 (`2026-08-07T12:34:56Z`).
    pub timestamp_utc: String,
    /// Available parallelism on the benchmarking host.
    pub threads: usize,
    /// Report schema version; bump when the JSON shape changes.
    pub schema_version: u32,
}

/// The current `BENCH_*.json` schema version.
pub const REPORT_SCHEMA_VERSION: u32 = 2;

impl ReportMeta {
    /// Capture provenance from the environment.
    pub fn capture() -> ReportMeta {
        let git_sha = std::env::var("TDE_GIT_SHA")
            .ok()
            .filter(|s| !s.is_empty())
            .or_else(|| {
                std::process::Command::new("git")
                    .args(["rev-parse", "HEAD"])
                    .current_dir(env!("CARGO_MANIFEST_DIR"))
                    .output()
                    .ok()
                    .filter(|o| o.status.success())
                    .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
            })
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned());
        ReportMeta {
            git_sha,
            timestamp_utc: iso8601_utc_now(),
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            schema_version: REPORT_SCHEMA_VERSION,
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"git_sha\":\"{}\",\"timestamp_utc\":\"{}\",\"threads\":{}}}",
            self.schema_version,
            tde_obs::json_escape(&self.git_sha),
            tde_obs::json_escape(&self.timestamp_utc),
            self.threads
        )
    }
}

/// UTC now as ISO 8601, hand-rolled (no chrono in this repo).
fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (y, mo, d) = tde_types::datetime::ymd_from_days((secs / 86_400) as i64);
    let rem = secs % 86_400;
    format!(
        "{y:04}-{mo:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

/// Which way is better for a tracked metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, bytes).
    Lower,
    /// Larger is better (throughput, speedup ratios).
    Higher,
}

impl Direction {
    /// The JSON label (`"lower"` / `"higher"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }
}

/// One gated measurement: `bench-gate` compares `value` against the
/// committed baseline and flags a regression when it moves the wrong way
/// by more than the metric's noise allowance.
#[derive(Debug, Clone)]
pub struct TrackedMetric {
    /// Metric name, unique within the figure.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Unit, informational (`"ns"`, `"x"`, `"rows/s"`).
    pub unit: String,
    /// Which way is better.
    pub direction: Direction,
    /// Multiplicative noise allowance (`1.3` = 30% drift tolerated).
    pub noise: f64,
}

/// JSON telemetry accumulated by one figure-harness invocation and
/// written to `bench_results/BENCH_<figure>.json` (schema v2: meta +
/// tracked metrics + free-form sections).
///
/// Tracked metrics from [`BenchReport::metric`] feed the `bench-gate`
/// regression comparator. Sections are raw JSON values: timings from
/// [`BenchReport::timing`], per-column compression telemetry from
/// [`BenchReport::table`], or any pre-rendered document (e.g.
/// `ExplainAnalyze::to_json`) via [`BenchReport::json`].
pub struct BenchReport {
    figure: String,
    meta: ReportMeta,
    metrics: Vec<TrackedMetric>,
    sections: Vec<(String, String)>,
}

impl BenchReport {
    /// Start a report for `figure` (used in the output file name; keep it
    /// filesystem-safe).
    pub fn new(figure: &str) -> BenchReport {
        BenchReport {
            figure: figure.to_owned(),
            meta: ReportMeta::capture(),
            metrics: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Record a tracked (gated) metric. Non-finite values are recorded
    /// as zero so the report stays valid JSON.
    pub fn metric(&mut self, name: &str, value: f64, unit: &str, direction: Direction, noise: f64) {
        self.metrics.push(TrackedMetric {
            name: name.to_owned(),
            value: if value.is_finite() { value } else { 0.0 },
            unit: unit.to_owned(),
            direction,
            noise: if noise.is_finite() && noise >= 1.0 {
                noise
            } else {
                1.3
            },
        });
    }

    /// Record a tracked wall-time metric (nanoseconds, lower is better).
    pub fn metric_timing(&mut self, name: &str, elapsed: Duration, noise: f64) {
        self.metric(
            name,
            elapsed.as_nanos() as f64,
            "ns",
            Direction::Lower,
            noise,
        );
    }

    /// Attach a snapshot of the process-wide metrics registry's counters
    /// and gauges as a `registry` section — per-run instrument totals
    /// alongside the tracked timings.
    pub fn registry_snapshot(&mut self) {
        use tde_obs::metrics::SampleValue;
        let snap = tde_obs::metrics::global().snapshot();
        let entries: Vec<String> = snap
            .samples
            .iter()
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => {
                    Some(format!("\"{}\":{v}", tde_obs::json_escape(&s.key())))
                }
                SampleValue::Gauge(v) => {
                    Some(format!("\"{}\":{v}", tde_obs::json_escape(&s.key())))
                }
                SampleValue::Histogram(_) => None,
            })
            .collect();
        self.json("registry", format!("{{{}}}", entries.join(",")));
    }

    /// Attach a pre-rendered JSON value under `label`.
    pub fn json(&mut self, label: &str, json: impl Into<String>) {
        self.sections.push((label.to_owned(), json.into()));
    }

    /// Attach a timing measurement.
    pub fn timing(&mut self, label: &str, elapsed: Duration) {
        self.json(label, format!("{{\"elapsed_ns\":{}}}", elapsed.as_nanos()));
    }

    /// Attach the per-column compression telemetry of `table`.
    pub fn table(&mut self, table: &Table) {
        let cols: Vec<String> = table
            .compression_telemetry()
            .iter()
            .map(|c| c.to_json())
            .collect();
        self.json(
            &format!("table:{}", table.name),
            format!(
                "{{\"table\":\"{}\",\"rows\":{},\"columns\":[{}]}}",
                tde_obs::json_escape(&table.name),
                table.row_count(),
                cols.join(",")
            ),
        );
    }

    /// Render the schema-v2 report document.
    pub fn to_json(&self) -> String {
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|m| {
                format!(
                    "{{\"name\":\"{}\",\"value\":{},\"unit\":\"{}\",\"direction\":\"{}\",\"noise\":{}}}",
                    tde_obs::json_escape(&m.name),
                    m.value,
                    tde_obs::json_escape(&m.unit),
                    m.direction.as_str(),
                    m.noise
                )
            })
            .collect();
        let body: Vec<String> = self
            .sections
            .iter()
            .map(|(label, json)| {
                format!(
                    "{{\"label\":\"{}\",\"value\":{json}}}",
                    tde_obs::json_escape(label)
                )
            })
            .collect();
        format!(
            "{{\"figure\":\"{}\",\"meta\":{},\"metrics\":[{}],\"sections\":[{}]}}\n",
            tde_obs::json_escape(&self.figure),
            self.meta.to_json(),
            metrics.join(","),
            body.join(",")
        )
    }

    /// Write `bench_results/BENCH_<figure>.json` and return its path.
    pub fn write(&self) -> PathBuf {
        let path = results_dir().join(format!("BENCH_{}.json", self.figure));
        std::fs::write(&path, self.to_json()).expect("write bench report");
        println!("[telemetry] wrote {}", path.display());
        path
    }
}

/// Print a header for a figure harness.
pub fn banner(figure: &str, what: &str) {
    println!("\n================================================================");
    println!("{figure}: {what}");
    println!("================================================================");
}

/// Format a byte count as MB.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// File size helper.
pub fn file_size(path: impl AsRef<Path>) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

/// The small-table set the paper labels "SF-1 Tables" (everything except
/// the two large tables).
pub const SF1_TABLES: [TpchTable; 7] = [
    TpchTable::Region,
    TpchTable::Nation,
    TpchTable::Supplier,
    TpchTable::Customer,
    TpchTable::Part,
    TpchTable::Partsupp,
    TpchTable::Orders,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_protocol_trims_extremes() {
        let mut calls = 0;
        let d = measure(6, || calls += 1);
        assert_eq!(calls, 6);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn scale_defaults() {
        let s = Scale::from_env();
        assert!(s.sf > 0.0);
        assert!(s.rle_large > s.rle_small);
    }

    #[test]
    fn bench_report_writes_valid_json() {
        let dir = std::env::temp_dir().join("tde_bench_report_test");
        std::env::set_var("TDE_BENCH_RESULTS", &dir);
        let mut r = BenchReport::new("test_fig");
        r.timing("import \"quoted\"", Duration::from_micros(1500));
        r.metric_timing("scan_ns", Duration::from_micros(900), 1.3);
        r.metric("speedup", 2.5, "x", Direction::Higher, 1.2);
        r.table(&build_rle_table(10_000, 1));
        r.registry_snapshot();
        let path = r.write();
        std::env::remove_var("TDE_BENCH_RESULTS");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"figure\":\"test_fig\""));
        assert!(doc.contains("\"schema_version\":2"));
        assert!(doc.contains("\"git_sha\""));
        assert!(doc.contains("\"timestamp_utc\""));
        assert!(doc.contains("\"elapsed_ns\":1500000"));
        assert!(doc.contains(
            "\"name\":\"scan_ns\",\"value\":900000,\"unit\":\"ns\",\"direction\":\"lower\""
        ));
        assert!(doc.contains(
            "\"name\":\"speedup\",\"value\":2.5,\"unit\":\"x\",\"direction\":\"higher\""
        ));
        assert!(doc.contains("\"table\":\"rle\""));
        assert!(doc.contains("import \\\"quoted\\\""));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_meta_is_sane() {
        let m = ReportMeta::capture();
        assert_eq!(m.schema_version, REPORT_SCHEMA_VERSION);
        assert!(m.threads >= 1);
        // 2026-08-07T.. shape: YYYY-MM-DDTHH:MM:SSZ.
        assert_eq!(m.timestamp_utc.len(), 20, "{}", m.timestamp_utc);
        assert!(m.timestamp_utc.ends_with('Z'));
        assert_eq!(&m.timestamp_utc[10..11], "T");
    }

    #[test]
    fn non_finite_metric_values_are_sanitized() {
        let mut r = BenchReport::new("nan_fig");
        r.metric("bad", f64::NAN, "x", Direction::Higher, f64::INFINITY);
        let doc = r.to_json();
        assert!(doc.contains("\"name\":\"bad\",\"value\":0,"));
        assert!(doc.contains("\"noise\":1.3"));
    }

    #[test]
    fn rle_table_builder_matches_spec() {
        let t = build_rle_table(100_000, 3);
        assert_eq!(t.row_count(), 100_000);
        assert_eq!(
            t.columns[0].data.algorithm(),
            tde_encodings::Algorithm::RunLength
        );
        assert_eq!(
            t.columns[1].data.algorithm(),
            tde_encodings::Algorithm::RunLength
        );
    }
}

//! The perf-regression gate: compare `BENCH_*.json` reports against
//! committed baselines.
//!
//! Each schema-v2 report carries *tracked metrics* with a direction
//! (lower/higher is better) and a per-metric multiplicative noise
//! allowance. A metric regresses when it moves the wrong way past its
//! allowance:
//!
//! * lower-is-better: `current > baseline * noise`
//! * higher-is-better: `current < baseline / noise`
//!
//! The comparator is deliberately tolerant of drift in report *shape*:
//! metrics present only in the baseline are reported as missing (a
//! warning, not a failure — figures get re-scoped), metrics present only
//! in the current run are reported as new, and figures without a
//! baseline are skipped. Only a genuine wrong-way move fails the gate.
//!
//! `--self-test` support: [`inject_regression`] synthesizes a wrong-
//! way move on every tracked metric of a report, which the `bench-gate`
//! binary runs against the same report as its own baseline — proving the
//! comparator actually fires before CI trusts a clean pass.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use tde_stats::minijson::{self, Value};

use crate::Direction;

/// One tracked metric as read back from a report file.
#[derive(Debug, Clone)]
pub struct ReportMetric {
    /// Metric name, unique within the figure.
    pub name: String,
    /// Recorded value.
    pub value: f64,
    /// Which way is better.
    pub direction: Direction,
    /// Multiplicative noise allowance.
    pub noise: f64,
}

/// A parsed `BENCH_*.json` report (the subset the gate needs).
#[derive(Debug, Clone)]
pub struct Report {
    /// Figure name.
    pub figure: String,
    /// Schema version (`0` for pre-v2 reports without meta).
    pub schema_version: u64,
    /// Git SHA the report was produced at, if recorded.
    pub git_sha: Option<String>,
    /// Thread count the report was produced with, if recorded.
    pub threads: Option<u64>,
    /// Tracked metrics, in report order.
    pub metrics: Vec<ReportMetric>,
}

/// Parse one report file.
pub fn load_report(path: &Path) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_report(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parse a report document.
pub fn parse_report(text: &str) -> Result<Report, String> {
    let doc = minijson::parse(text)?;
    let figure = doc
        .get("figure")
        .and_then(Value::as_str)
        .ok_or("report without \"figure\"")?
        .to_owned();
    let meta = doc.get("meta");
    let schema_version = meta
        .and_then(|m| m.get("schema_version"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    let git_sha = meta
        .and_then(|m| m.get("git_sha"))
        .and_then(Value::as_str)
        .map(str::to_owned);
    let threads = meta.and_then(|m| m.get("threads")).and_then(Value::as_u64);
    let mut metrics = Vec::new();
    if let Some(list) = doc.get("metrics").and_then(Value::as_array) {
        for m in list {
            let name = m
                .get("name")
                .and_then(Value::as_str)
                .ok_or("metric without \"name\"")?
                .to_owned();
            let value = m
                .get("value")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("metric {name:?} without numeric \"value\""))?;
            let direction = match m.get("direction").and_then(Value::as_str) {
                Some("lower") | None => Direction::Lower,
                Some("higher") => Direction::Higher,
                Some(other) => return Err(format!("metric {name:?}: bad direction {other:?}")),
            };
            let noise = m
                .get("noise")
                .and_then(Value::as_f64)
                .filter(|n| n.is_finite() && *n >= 1.0)
                .unwrap_or(1.3);
            metrics.push(ReportMetric {
                name,
                value,
                direction,
                noise,
            });
        }
    }
    Ok(Report {
        figure,
        schema_version,
        git_sha,
        threads,
        metrics,
    })
}

/// Every `BENCH_*.json` in a directory, keyed by file name.
pub fn load_dir(dir: &Path) -> Result<BTreeMap<String, Report>, String> {
    let mut out = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.insert(name.to_owned(), load_report(&path)?);
        }
    }
    Ok(out)
}

/// The verdict on one metric.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Figure the metric belongs to.
    pub figure: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Direction compared under.
    pub direction: Direction,
    /// Noise allowance applied.
    pub noise: f64,
    /// Whether the move exceeds the allowance the wrong way.
    pub regressed: bool,
}

impl Comparison {
    /// Human-readable one-liner.
    pub fn describe(&self) -> String {
        let ratio = if self.baseline != 0.0 {
            self.current / self.baseline
        } else {
            f64::NAN
        };
        format!(
            "{}/{}: baseline {:.4e} -> current {:.4e} ({}x, {} is better, allow {}x)",
            self.figure,
            self.metric,
            self.baseline,
            self.current,
            if ratio.is_nan() {
                "?".to_owned()
            } else {
                format!("{ratio:.3}")
            },
            self.direction.as_str(),
            self.noise
        )
    }
}

/// The gate's aggregate result.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Every metric compared.
    pub comparisons: Vec<Comparison>,
    /// Baseline metrics absent from the current run (`figure/metric`).
    pub missing: Vec<String>,
    /// Current metrics with no baseline (`figure/metric`).
    pub new_metrics: Vec<String>,
    /// Baseline figures with no current report.
    pub missing_figures: Vec<String>,
}

impl GateOutcome {
    /// The regressed subset of [`GateOutcome::comparisons`].
    pub fn regressions(&self) -> Vec<&Comparison> {
        self.comparisons.iter().filter(|c| c.regressed).collect()
    }
}

/// Compare one metric pair under the baseline's direction and allowance.
pub fn compare_metric(figure: &str, baseline: &ReportMetric, current: f64) -> Comparison {
    // A zero baseline can't anchor a multiplicative test; never flag it.
    let regressed = baseline.value != 0.0
        && match baseline.direction {
            Direction::Lower => current > baseline.value * baseline.noise,
            Direction::Higher => current < baseline.value / baseline.noise,
        };
    Comparison {
        figure: figure.to_owned(),
        metric: baseline.name.clone(),
        baseline: baseline.value,
        current,
        direction: baseline.direction,
        noise: baseline.noise,
        regressed,
    }
}

/// Compare a current results directory against a baseline directory.
pub fn compare_dirs(baseline_dir: &Path, current_dir: &Path) -> Result<GateOutcome, String> {
    let baselines = load_dir(baseline_dir)?;
    let currents = load_dir(current_dir)?;
    let mut outcome = GateOutcome::default();
    for (file, base) in &baselines {
        let Some(cur) = currents.get(file) else {
            outcome.missing_figures.push(base.figure.clone());
            continue;
        };
        let cur_by_name: BTreeMap<&str, f64> = cur
            .metrics
            .iter()
            .map(|m| (m.name.as_str(), m.value))
            .collect();
        for bm in &base.metrics {
            match cur_by_name.get(bm.name.as_str()) {
                Some(&v) => outcome
                    .comparisons
                    .push(compare_metric(&base.figure, bm, v)),
                None => outcome.missing.push(format!("{}/{}", base.figure, bm.name)),
            }
        }
        let base_names: Vec<&str> = base.metrics.iter().map(|m| m.name.as_str()).collect();
        for cm in &cur.metrics {
            if !base_names.contains(&cm.name.as_str()) {
                outcome
                    .new_metrics
                    .push(format!("{}/{}", cur.figure, cm.name));
            }
        }
    }
    Ok(outcome)
}

/// Synthesize a wrong-way move on every tracked metric — the gate's
/// self-test input. The move is twice the metric's own noise allowance,
/// so it lands beyond the threshold no matter how generous the
/// allowance is. A comparator that passes this is broken.
pub fn inject_regression(report: &Report) -> Report {
    let mut r = report.clone();
    for m in &mut r.metrics {
        let factor = 2.0 * m.noise.max(1.0);
        match m.direction {
            Direction::Lower => m.value *= factor,
            Direction::Higher => m.value /= factor,
        }
    }
    r
}

/// Write a report's gate-relevant subset back to disk (the self-test
/// materializes its injected run this way).
pub fn write_report(report: &Report, path: &Path) -> Result<(), String> {
    let metrics: Vec<String> = report
        .metrics
        .iter()
        .map(|m| {
            format!(
                "{{\"name\":\"{}\",\"value\":{},\"unit\":\"\",\"direction\":\"{}\",\"noise\":{}}}",
                tde_obs::json_escape(&m.name),
                if m.value.is_finite() { m.value } else { 0.0 },
                m.direction.as_str(),
                m.noise
            )
        })
        .collect();
    let doc = format!(
        "{{\"figure\":\"{}\",\"meta\":{{\"schema_version\":{},\"git_sha\":\"{}\",\"timestamp_utc\":\"\",\"threads\":{}}},\"metrics\":[{}],\"sections\":[]}}\n",
        tde_obs::json_escape(&report.figure),
        report.schema_version.max(crate::REPORT_SCHEMA_VERSION as u64),
        tde_obs::json_escape(report.git_sha.as_deref().unwrap_or("self-test")),
        report.threads.unwrap_or(1),
        metrics.join(",")
    );
    std::fs::write(path, doc).map_err(|e| format!("{}: {e}", path.display()))
}

/// Run the gate's self-test against a baseline directory: every report
/// gets a synthetic past-the-allowance wrong-way move injected, and the comparator must
/// flag at least one regression per tracked metric. Returns the number
/// of injected regressions detected; `Err` if any injection escaped or
/// the baseline has no tracked metrics to inject into.
pub fn self_test(baseline_dir: &Path, scratch_dir: &Path) -> Result<usize, String> {
    let baselines = load_dir(baseline_dir)?;
    std::fs::create_dir_all(scratch_dir).map_err(|e| e.to_string())?;
    let mut injected = 0usize;
    for (file, base) in &baselines {
        let bad = inject_regression(base);
        injected += bad.metrics.iter().filter(|m| m.value != 0.0).count();
        write_report(&bad, &scratch_dir.join(file))?;
    }
    if injected == 0 {
        return Err(format!(
            "self-test: no tracked metrics under {} to inject into",
            baseline_dir.display()
        ));
    }
    let outcome = compare_dirs(baseline_dir, scratch_dir)?;
    let caught = outcome.regressions().len();
    if caught < injected {
        return Err(format!(
            "self-test: injected {injected} regressions but the gate caught only {caught}"
        ));
    }
    Ok(caught)
}

/// A scratch directory for the self-test's injected reports.
pub fn self_test_scratch() -> PathBuf {
    std::env::temp_dir().join(format!("tde_bench_gate_selftest_{}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metric(name: &str, value: f64, direction: Direction, noise: f64) -> ReportMetric {
        ReportMetric {
            name: name.to_owned(),
            value,
            direction,
            noise,
        }
    }

    #[test]
    fn regression_rules_respect_direction_and_noise() {
        let lat = metric("lat_ns", 1000.0, Direction::Lower, 1.3);
        assert!(!compare_metric("f", &lat, 1200.0).regressed); // inside noise
        assert!(compare_metric("f", &lat, 1400.0).regressed); // 1.4x slower
        assert!(!compare_metric("f", &lat, 500.0).regressed); // improvement
        let spd = metric("speedup", 4.0, Direction::Higher, 1.25);
        assert!(!compare_metric("f", &spd, 3.5).regressed); // inside noise
        assert!(compare_metric("f", &spd, 3.0).regressed); // lost 25%+
        assert!(!compare_metric("f", &spd, 8.0).regressed); // improvement
                                                            // Zero baseline never anchors a ratio.
        let zero = metric("z", 0.0, Direction::Lower, 1.3);
        assert!(!compare_metric("f", &zero, 100.0).regressed);
    }

    #[test]
    fn report_round_trip_and_injection() {
        let text = "{\"figure\":\"fig\",\"meta\":{\"schema_version\":2,\"git_sha\":\"abc\",\"timestamp_utc\":\"t\",\"threads\":8},\"metrics\":[{\"name\":\"a_ns\",\"value\":100,\"unit\":\"ns\",\"direction\":\"lower\",\"noise\":1.3},{\"name\":\"b_x\",\"value\":4,\"unit\":\"x\",\"direction\":\"higher\",\"noise\":1.2}],\"sections\":[]}";
        let r = parse_report(text).unwrap();
        assert_eq!(r.figure, "fig");
        assert_eq!(r.schema_version, 2);
        assert_eq!(r.threads, Some(8));
        assert_eq!(r.metrics.len(), 2);
        let bad = inject_regression(&r);
        assert_eq!(bad.metrics[0].value, 260.0); // lower: ×(2 × noise 1.3)
        assert_eq!(bad.metrics[1].value, 4.0 / 2.4); // higher: ÷(2 × noise 1.2)
                                                     // Injected run must regress on every metric.
        for (bm, im) in r.metrics.iter().zip(&bad.metrics) {
            assert!(compare_metric("fig", bm, im.value).regressed, "{}", bm.name);
        }
    }

    #[test]
    fn pre_v2_reports_parse_with_no_metrics() {
        let r = parse_report("{\"figure\":\"old\",\"sections\":[]}").unwrap();
        assert_eq!(r.schema_version, 0);
        assert!(r.metrics.is_empty());
        assert_eq!(r.git_sha, None);
    }

    #[test]
    fn directory_compare_and_self_test() {
        let base = std::env::temp_dir().join(format!("tde_gate_base_{}", std::process::id()));
        let cur = std::env::temp_dir().join(format!("tde_gate_cur_{}", std::process::id()));
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&cur).unwrap();
        let report = Report {
            figure: "fig".into(),
            schema_version: 2,
            git_sha: Some("abc".into()),
            threads: Some(4),
            metrics: vec![
                metric("lat_ns", 1000.0, Direction::Lower, 1.3),
                metric("gone", 5.0, Direction::Higher, 1.3),
            ],
        };
        write_report(&report, &base.join("BENCH_fig.json")).unwrap();
        // Current: lat within noise, "gone" dropped, "fresh" added.
        let current = Report {
            metrics: vec![
                metric("lat_ns", 1100.0, Direction::Lower, 1.3),
                metric("fresh", 1.0, Direction::Lower, 1.3),
            ],
            ..report.clone()
        };
        write_report(&current, &cur.join("BENCH_fig.json")).unwrap();
        let outcome = compare_dirs(&base, &cur).unwrap();
        assert_eq!(outcome.comparisons.len(), 1);
        assert!(outcome.regressions().is_empty());
        assert_eq!(outcome.missing, vec!["fig/gone"]);
        assert_eq!(outcome.new_metrics, vec!["fig/fresh"]);
        // Self-test catches every injected move.
        let scratch = std::env::temp_dir().join(format!("tde_gate_st_{}", std::process::id()));
        let caught = self_test(&base, &scratch).unwrap();
        assert_eq!(caught, 2);
        for d in [&base, &cur, &scratch] {
            std::fs::remove_dir_all(d).ok();
        }
    }
}

//! Experiment E7 — Figure 10: filtering with indexed scans.
//!
//! The §6.6 query
//!
//! ```sql
//! SELECT Index, MAX(Other) FROM table
//! WHERE Index > (100 - selectivity) GROUP BY Index
//! ```
//!
//! under the paper's three plans:
//!
//! 1. `Scan → Filter → Aggregate` (control)
//! 2. `Index → Filter → IndexedScan → Aggregate` (hash aggregation)
//! 3. `Index → Filter → Sort → IndexedScan → OrdAggr` (ordered retrieval)
//!
//! over both sort columns of the small and large run-length tables,
//! across a selectivity sweep.
//!
//! Paper shape: plan 2/3 beat the control ~2× on the primary key; plan 3
//! wins ~3× on the *secondary* key of the large table (runs longer than
//! the block iteration size) but *loses* on the small table (runs of
//! ~100 rows — many small reads).

use std::sync::Arc;
use tde_bench::*;
use tde_core::Query;
use tde_exec::expr::{AggFunc, CmpOp, Expr};
use tde_plan::strategic::OptimizerOptions;
use tde_storage::Table;

const SELECTIVITIES: [i64; 6] = [1, 5, 10, 25, 50, 100];

fn run_query(
    table: &Arc<Table>,
    key: &str,
    other: &str,
    selectivity: i64,
    opts: OptimizerOptions,
) -> usize {
    Query::scan_columns(table, &[key, other])
        .filter(Expr::cmp(
            CmpOp::Gt,
            Expr::col(0),
            Expr::int(100 - selectivity),
        ))
        .aggregate(vec![0], vec![(AggFunc::Max, 1, "mx")])
        .with_optimizer(opts)
        .rows()
        .len()
}

fn sweep(table: &Arc<Table>, rows: u64, reps: usize, report: &mut BenchReport) {
    let control = OptimizerOptions {
        invisible_joins: false,
        index_tables: false,
        ordered_retrieval: false,
        kernel_pushdown: false,
        parallelism: 1,
    };
    let indexed = OptimizerOptions {
        ordered_retrieval: false,
        kernel_pushdown: false,
        ..Default::default()
    };
    let ordered = OptimizerOptions::default();

    for key in ["primary", "secondary"] {
        let other = if key == "primary" {
            "secondary"
        } else {
            "primary"
        };
        println!("\n-- {rows} rows, filter on {key} --");
        println!(
            "{:>11} {:>12} {:>12} {:>12} {:>8} {:>8}",
            "selectivity", "plan1 scan", "plan2 index", "plan3 sorted", "p1/p2", "p1/p3"
        );
        for sel in SELECTIVITIES {
            let mut groups = [0usize; 3];
            let t1 = measure(reps, || {
                groups[0] = run_query(table, key, other, sel, control);
            });
            let t2 = measure(reps, || {
                groups[1] = run_query(table, key, other, sel, indexed);
            });
            let t3 = measure(reps, || {
                groups[2] = run_query(table, key, other, sel, ordered);
            });
            assert_eq!(groups[0], groups[1], "plans disagree");
            assert_eq!(groups[0], groups[2], "plans disagree");
            for (plan, t) in [("scan", t1), ("index", t2), ("sorted", t3)] {
                report.timing(&format!("{rows}r {key} sel={sel}% {plan}"), t);
                // Track the mid-sweep point: coarse enough to be stable,
                // selective enough that the indexed plans still matter.
                if sel == 10 {
                    report.metric_timing(&format!("{rows}r_{key}_sel10_{plan}_ns"), t, 2.0);
                }
            }
            if sel == 10 {
                report.metric(
                    &format!("{rows}r_{key}_sel10_sorted_speedup"),
                    t1.as_secs_f64() / t3.as_secs_f64().max(1e-12),
                    "x",
                    Direction::Higher,
                    2.5,
                );
            }
            println!(
                "{:>10}% {:>11.4}s {:>11.4}s {:>11.4}s {:>7.2}x {:>7.2}x",
                sel,
                t1.as_secs_f64(),
                t2.as_secs_f64(),
                t3.as_secs_f64(),
                t1.as_secs_f64() / t2.as_secs_f64(),
                t1.as_secs_f64() / t3.as_secs_f64(),
            );
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("fig10_filtering");
    banner(
        "Figure 10",
        "filter + aggregate over run-length data, three plans",
    );
    println!(
        "(RLE_SMALL={}, RLE_LARGE={}, reps={})",
        scale.rle_small, scale.rle_large, scale.reps
    );

    for (label, rows) in [("small", scale.rle_small), ("large", scale.rle_large)] {
        println!("\nbuilding the {label} table ...");
        let table = build_rle_table(rows, 99);
        let runs = table.columns[1].data.rle_runs().map_or(1, |r| r.len());
        let avg = rows as f64 / runs as f64;
        println!(
            "  secondary runs: {} (avg {:.0} rows — {} the {}-row block size)",
            runs,
            avg,
            if avg >= tde_encodings::BLOCK_SIZE as f64 {
                "above"
            } else {
                "below"
            },
            tde_encodings::BLOCK_SIZE
        );
        report.table(&table);
        sweep(&table, rows, scale.reps, &mut report);

        // One fully traced run of the ordered plan at 10% selectivity:
        // the per-operator tree plus the tactical decisions behind it.
        let traced = Query::scan_columns(&table, &["secondary", "primary"])
            .filter(Expr::cmp(CmpOp::Gt, Expr::col(0), Expr::int(90)))
            .aggregate(vec![0], vec![(AggFunc::Max, 1, "mx")])
            .explain_analyze();
        report.json(
            &format!("explain:{label} secondary sel=10%"),
            traced.to_json(),
        );
    }
    report.registry_snapshot();
    report.write();

    println!("\nPaper check: primary-key index plans ≈2× over the control;");
    println!("secondary-key ordered plan wins on the large table but degrades");
    println!("on the small one (runs shorter than the block iteration size).");
}

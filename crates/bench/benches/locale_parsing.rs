//! Experiment E10 — §5.1.2: the locale-lock parallel-parsing collapse.
//!
//! The first TextScan parsed fields with locale-sensitive standard-library
//! parsers; each parse locked a singleton locale object, and lock
//! contention made *parallel* execution at least an order of magnitude
//! slower. The buffer-oriented parsers (§5.1.3) rely on no external state
//! and scale. This harness measures the 2×2 grid: {buffer, locale-locking}
//! × {serial, parallel}.

use std::time::Instant;
use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_textscan::{import_file, locale, parsers, ImportOptions, ParserKind, ScanMode};

fn main() {
    let scale = Scale::from_env();
    banner("§5.1.2 (E10)", "locale-locking vs buffer parsers");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dir = tpch_files(scale.sf_large);
    let path = dir.join(TpchTable::Lineitem.file_name());
    println!(
        "lineitem at SF {} ({} MB), reps={}, cores={cores}\n",
        scale.sf_large,
        mb(file_size(&path)),
        scale.reps
    );

    // Part 1: the per-field tax of going through the locked locale, in a
    // tight single-threaded parse loop (no tokenizer noise).
    let fields: Vec<Vec<u8>> = (0..1_000_000)
        .map(|i| format!("{}", (i * 7919) % 1_000_000).into_bytes())
        .collect();
    let t0 = Instant::now();
    let mut sink = 0i64;
    for f in &fields {
        sink = sink.wrapping_add(parsers::parse_i64(f).unwrap().unwrap());
    }
    let buffer_ns = t0.elapsed().as_nanos() as f64 / fields.len() as f64;
    let t0 = Instant::now();
    for f in &fields {
        sink = sink.wrapping_add(locale::parse_i64_locale(f).unwrap().unwrap());
    }
    let locale_ns = t0.elapsed().as_nanos() as f64 / fields.len() as f64;
    std::hint::black_box(sink);
    println!("per-field integer parse: buffer {buffer_ns:.0} ns, locale-locking {locale_ns:.0} ns");
    println!(
        "single-threaded locale tax: {:.1}x\n",
        locale_ns / buffer_ns
    );

    // Part 2: the 2×2 import grid (scalar parsing isolated, encodings off
    // so the parsers dominate). On multi-core hardware the locale-locking
    // parallel cell collapses; on a single core the threads timeslice and
    // only the per-field tax shows — EXPERIMENTS.md records which regime
    // this run was in.
    println!("{:<26} {:>9}", "configuration", "seconds");
    let mut grid = Vec::new();
    for (kind, kname) in [
        (ParserKind::Buffer, "buffer"),
        (ParserKind::LocaleLocking, "locale-locking"),
    ] {
        for (parallel, pname) in [(false, "serial"), (true, "parallel")] {
            let base = import_options(TpchTable::Lineitem, false, false, ScanMode::Scalars);
            let opts = ImportOptions {
                parser: kind,
                parallel,
                ..base
            };
            let t = measure(scale.reps.min(3), || {
                import_file(&path, &opts).unwrap();
            });
            println!(
                "{:<26} {:>9.3}",
                format!("{kname} {pname}"),
                t.as_secs_f64()
            );
            grid.push(t.as_secs_f64());
        }
    }
    // grid: [buffer serial, buffer parallel, locale serial, locale parallel]
    println!(
        "\nbuffer parsers: parallel speedup {:.2}x",
        grid[0] / grid[1]
    );
    println!(
        "locale-locking: parallel 'speedup' {:.2}x",
        grid[2] / grid[3]
    );
    println!(
        "locale parallel vs buffer parallel: {:.2}x slower",
        grid[3] / grid[1]
    );
    if cores == 1 {
        println!("\n(single core: the contention collapse cannot manifest; the");
        println!(" per-field locale tax above is the measurable component here)");
    } else {
        println!("\nPaper check: under the locale lock, parallel parsing degrades —");
        println!("contention negates (and reverses) the gains from parallelism.");
    }
}

//! Experiment E1 — Figure 4: parsing performance.
//!
//! Import latency for the two large tables (lineitem and Flights) at
//! every deferral level: raw disk bandwidth, tokenizing, splitting into
//! column files, parsing scalars only, and parsing all columns — the
//! latter two with encodings and heap acceleration on and off.
//!
//! Paper shape to reproduce: encoding on is comparable to or better than
//! encoding off, and full parsing with encoding + acceleration is
//! comparable to merely splitting the file (no benefit to deferred
//! parsing).

use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_textscan::{import_file, read_bandwidth, split, tokenize, ScanMode};

fn run_table(
    label: &str,
    path: &std::path::Path,
    opts_for: &dyn Fn(bool, bool, ScanMode) -> tde_textscan::ImportOptions,
    reps: usize,
) {
    let bytes = file_size(path);
    println!("\n-- {label} ({} MB) --", mb(bytes));
    println!("{:<26} {:>9}  {:>9}", "mode", "seconds", "MB/s");
    let report = |mode: &str, secs: f64| {
        println!(
            "{:<26} {:>9.3}  {:>9.1}",
            mode,
            secs,
            bytes as f64 / 1e6 / secs
        );
    };

    let t = measure(reps, || {
        read_bandwidth(path).unwrap();
    });
    report("bandwidth", t.as_secs_f64());

    let t = measure(reps, || {
        tokenize(path).unwrap();
    });
    report("tokenize", t.as_secs_f64());

    let split_dir = data_dir().join(format!("{label}_split"));
    let t = measure(reps, || {
        split(path, &split_dir).unwrap();
    });
    report("split", t.as_secs_f64());

    for (mode, mode_name) in [(ScanMode::Scalars, "scalars"), (ScanMode::All, "all")] {
        for (enc, accel) in [(false, false), (false, true), (true, false), (true, true)] {
            if mode == ScanMode::Scalars && accel {
                continue; // acceleration applies only to parsed strings
            }
            let opts = opts_for(enc, accel, mode);
            let t = measure(reps, || {
                import_file(path, &opts).unwrap();
            });
            report(
                &format!(
                    "{mode_name} enc={} accel={}",
                    if enc { "on" } else { "off" },
                    if accel { "on" } else { "off" }
                ),
                t.as_secs_f64(),
            );
        }
    }
    std::fs::remove_dir_all(&split_dir).ok();
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 4",
        "parsing performance (import latency per deferral level)",
    );
    println!(
        "(SF_LARGE={}, FLIGHTS_ROWS={}, reps={})",
        scale.sf_large, scale.flights_rows, scale.reps
    );

    let tpch_dir = tpch_files(scale.sf_large);
    let lineitem = tpch_dir.join(TpchTable::Lineitem.file_name());
    run_table(
        "lineitem",
        &lineitem,
        &|enc, accel, mode| import_options(TpchTable::Lineitem, enc, accel, mode),
        scale.reps,
    );

    let flights = flights_file(scale.flights_rows);
    run_table("flights", &flights, &flights_options, scale.reps);

    println!("\nPaper check: 'all enc=on accel=on' should be within noise of 'split',");
    println!("and encoding on should never be materially slower than encoding off.");
}

//! Criterion micro-benchmarks (M1–M3): bit packing, per-algorithm encode
//! and decode throughput, and the header manipulations whose O(1)/O(2^bits)
//! claims the paper makes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tde_encodings::dynamic::encode_all;
use tde_encodings::manipulate;
use tde_encodings::{bitpack, EncodedStream, BLOCK_SIZE};
use tde_types::Width;

const N: usize = 64 * BLOCK_SIZE;

fn bench_bitpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitpack");
    g.sample_size(20);
    for bits in [1u8, 4, 8, 13, 32] {
        let mask = (1u64 << bits) - 1;
        let values: Vec<u64> = (0..N as u64).map(|i| i & mask).collect();
        g.throughput(Throughput::Elements(N as u64));
        g.bench_with_input(BenchmarkId::new("pack", bits), &values, |b, v| {
            let mut out = Vec::with_capacity(N);
            b.iter(|| {
                out.clear();
                bitpack::pack(v, bits, &mut out);
            });
        });
        let mut packed = Vec::new();
        bitpack::pack(&values, bits, &mut packed);
        g.bench_with_input(BenchmarkId::new("unpack", bits), &packed, |b, p| {
            let mut out = Vec::with_capacity(N);
            b.iter(|| {
                out.clear();
                bitpack::unpack(p, bits, N, &mut out);
            });
        });
    }
    g.finish();
}

fn datasets() -> Vec<(&'static str, Vec<i64>)> {
    vec![
        ("sequential", (0..N as i64).collect()),
        (
            "small_range",
            (0..N as i64).map(|i| 1000 + (i * 37) % 200).collect(),
        ),
        (
            "small_domain",
            (0..N as i64).map(|i| (i % 20) * 1_000_003).collect(),
        ),
        ("runs", (0..N as i64).map(|i| i / 4096).collect()),
        (
            "random",
            (0..N as i64)
                .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64))
                .collect(),
        ),
    ]
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamic_encoding");
    g.sample_size(15);
    for (name, data) in datasets() {
        g.throughput(Throughput::Elements(N as u64));
        g.bench_with_input(BenchmarkId::new("encode", name), &data, |b, d| {
            b.iter(|| encode_all(d, Width::W8, true));
        });
        let stream = encode_all(&data, Width::W8, true).stream;
        g.bench_with_input(
            BenchmarkId::new(format!("decode_{}", stream.algorithm()), name),
            &stream,
            |b, s| {
                let mut out = Vec::with_capacity(N);
                b.iter(|| {
                    out.clear();
                    for blk in 0..s.block_count() {
                        s.decode_block(blk, &mut out);
                    }
                });
            },
        );
    }
    g.finish();
}

fn bench_manipulations(c: &mut Criterion) {
    let mut g = c.benchmark_group("header_manipulations");
    g.sample_size(30);
    // Narrowing must be O(1)/O(2^bits) — independent of row count. Bench
    // over two sizes to make regressions visible.
    for rows in [BLOCK_SIZE as i64, 256 * BLOCK_SIZE as i64] {
        let data: Vec<i64> = (0..rows).map(|i| 100 + (i % 50)).collect();
        g.bench_with_input(BenchmarkId::new("narrow_for", rows), &data, |b, d| {
            let mut s = EncodedStream::new_frame(Width::W8, true, 100, 6);
            for chunk in d.chunks(BLOCK_SIZE) {
                s.append_block(chunk).unwrap();
            }
            b.iter(|| {
                let mut c = s.clone();
                manipulate::narrow(&mut c)
            });
        });
        g.bench_with_input(BenchmarkId::new("narrow_dict", rows), &data, |b, d| {
            let mut s = EncodedStream::new_dict(Width::W8, true, 6);
            for chunk in d.chunks(BLOCK_SIZE) {
                s.append_block(chunk).unwrap();
            }
            b.iter(|| {
                let mut c = s.clone();
                manipulate::narrow(&mut c)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_bitpack,
    bench_encode_decode,
    bench_manipulations
);
criterion_main!(benches);

//! Criterion micro-benchmark (M4): the hash-strategy ladder of §2.3.4 —
//! direct 64K-table hashing vs perfect hashing vs collision-checked tuple
//! hashing — plus heap accelerator interning.
//!
//! This is the microscopic justification for width narrowing: the same
//! grouping workload gets strictly cheaper as the key gets narrower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tde_exec::hash::{GroupMap, HashStrategy, KeyPacking};
use tde_storage::{HeapAccelerator, StringHeap};
use tde_types::Collation;

const N: usize = 200_000;

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_strategies");
    g.sample_size(15);
    g.throughput(Throughput::Elements(N as u64));
    // 200 distinct 2-column keys; identical workload for all strategies.
    let keys: Vec<[i64; 2]> = (0..N as i64).map(|i| [i % 20, 100 + (i % 10)]).collect();
    let packing = KeyPacking::plan(&[Some((0, 19)), Some((100, 109))]).unwrap();
    assert!(packing.total_bits <= 16);

    for strategy in [
        HashStrategy::Direct64K,
        HashStrategy::Perfect,
        HashStrategy::Collision,
    ] {
        g.bench_with_input(
            BenchmarkId::new("group", strategy.name()),
            &keys,
            |b, keys| {
                b.iter(|| {
                    let packing = (strategy != HashStrategy::Collision).then(|| packing.clone());
                    let mut m = GroupMap::new(strategy, packing);
                    let mut acc = 0usize;
                    for k in keys {
                        acc += m.get_or_insert(k);
                    }
                    acc
                });
            },
        );
    }
    g.finish();
}

fn bench_accelerator(c: &mut Criterion) {
    let mut g = c.benchmark_group("heap_accelerator");
    g.sample_size(15);
    let small: Vec<String> = (0..N).map(|i| format!("value_{}", i % 100)).collect();
    let large: Vec<String> = (0..N / 10)
        .map(|i| format!("unique_string_number_{i}"))
        .collect();
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("intern_small_domain", |b| {
        b.iter(|| {
            let mut heap = StringHeap::new();
            let mut acc = HeapAccelerator::new(Collation::Binary);
            let mut sum = 0u64;
            for s in &small {
                sum = sum.wrapping_add(acc.intern(&mut heap, s));
            }
            sum
        });
    });
    g.throughput(Throughput::Elements((N / 10) as u64));
    g.bench_function("intern_unique", |b| {
        b.iter(|| {
            let mut heap = StringHeap::new();
            let mut acc = HeapAccelerator::new(Collation::Binary);
            let mut sum = 0u64;
            for s in &large {
                sum = sum.wrapping_add(acc.intern(&mut heap, s));
            }
            sum
        });
    });
    g.bench_function("append_unaccelerated", |b| {
        b.iter(|| {
            let mut heap = StringHeap::new();
            let mut sum = 0u64;
            for s in &small {
                sum = sum.wrapping_add(heap.append(s));
            }
            sum
        });
    });
    g.finish();
}

criterion_group!(benches, bench_strategies, bench_accelerator);
criterion_main!(benches);

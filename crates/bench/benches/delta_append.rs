//! Delta store: append throughput, merge-on-read overhead, compaction.
//!
//! The experiment behind the mutable delta buffer: a read-optimized
//! extract takes a stream of appends and deletes, queries keep running
//! against the merged view, and a compaction drains the buffer back
//! into a fresh read-optimized base.
//!
//! Timings:
//!
//! * `append` — buffering rows into a fresh [`DeltaTable`]
//! * `plain scan` — the reference group-by over the base table alone
//! * `empty merged scan` — the same query through a merge-on-read
//!   snapshot with *no* buffered mutations; the tracked ratio against
//!   the plain scan is the acceptance criterion "an idle delta costs
//!   nothing observable"
//! * `live merged scan` — the query with appends and tombstones live
//! * `compact` — draining the buffer through the dynamic encoder
//! * `post-compaction scan` — the query against the rebuilt base
//!
//! Writes `bench_results/BENCH_delta_append.json`.

use std::sync::Arc;
use tde_bench::{banner, measure, BenchReport, Direction, Scale};
use tde_core::Query;
use tde_delta::DeltaTable;
use tde_exec::expr::AggFunc;
use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
use tde_types::{DataType, Value};

const CITIES: [&str; 5] = ["lyon", "oslo", "kyiv", "lima", "bonn"];

/// The read-optimized base: a dense id, a small-domain quantity and a
/// low-cardinality string — one column per encoder family the delta
/// must merge against (FoR/dense, dictionary, heap).
fn base_table(rows: i64) -> Arc<Table> {
    let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
    let mut qty = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
    let mut city = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        id.append_i64(i);
        qty.append_i64(i % 7);
        city.append_str(Some(CITIES[i as usize % CITIES.len()]));
    }
    Arc::new(Table::new(
        "orders",
        vec![
            id.finish().column,
            qty.finish().column,
            city.finish().column,
        ],
    ))
}

/// The `i`-th appended row. Every 97th city is fresh, forcing the
/// snapshot's heap-overlay path; every 53rd quantity is NULL.
fn delta_row(base_rows: i64, i: i64) -> Vec<Value> {
    let qty = if i % 53 == 0 {
        Value::Null
    } else {
        Value::Int(i % 7)
    };
    let city = if i % 97 == 0 {
        Value::Str(format!("metro{}", i / 97))
    } else {
        Value::Str(CITIES[i as usize % CITIES.len()].to_owned())
    };
    vec![Value::Int(base_rows + i), qty, city]
}

/// The dashboard query: total quantity per city.
fn rollup(q: Query) -> usize {
    q.aggregate(vec![2], vec![(AggFunc::Sum, 1, "total")])
        .rows()
        .len()
}

fn main() {
    let scale = Scale::from_env();
    let rows = std::env::var("TDE_DELTA_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000i64);
    let appends = (rows / 10).max(1000);
    banner(
        "delta_append",
        "delta store: append throughput, merge-on-read overhead, compaction",
    );
    println!("base rows={rows}, appended rows={appends}\n");

    let base = base_table(rows);
    let batch: Vec<Vec<Value>> = (0..appends).map(|i| delta_row(rows, i)).collect();
    let dead: Vec<u64> = (0..rows as u64 / 20)
        .map(|k| k * 13 % rows as u64)
        .collect();
    let base_groups = rollup(Query::scan(&base));

    let mut report = BenchReport::new("delta_append");
    report.json(
        "workload",
        format!(
            "{{\"base_rows\":{rows},\"appends\":{appends},\"deletes\":{}}}",
            dead.len()
        ),
    );

    // Append throughput: a fresh buffer swallows the whole batch.
    let append = measure(scale.reps, || {
        let mut dt = DeltaTable::from_eager(Arc::clone(&base));
        dt.append_rows(&batch).expect("append");
        assert_eq!(dt.delta_rows(), appends as u64);
    });

    // The reference: the same rollup over the base table alone.
    let plain = measure(scale.reps, || {
        assert_eq!(rollup(Query::scan(&base)), base_groups);
    });

    // Empty merged scan: snapshot of a clean buffer. The merge machinery
    // is all still there — tombstone mask, delta blocks — just empty.
    let clean = DeltaTable::from_eager(Arc::clone(&base));
    let clean_src = clean.snapshot().expect("snapshot");
    let empty = measure(scale.reps, || {
        assert_eq!(rollup(Query::scan_delta(&clean_src)), base_groups);
    });

    // Live merged scan: appends buffered, base rows tombstoned.
    let mut live = DeltaTable::from_eager(Arc::clone(&base));
    live.append_rows(&batch).expect("append");
    live.delete(&dead).expect("delete");
    let live_src = live.snapshot().expect("snapshot");
    let live_groups = rollup(Query::scan_delta(&live_src));
    assert!(live_groups >= base_groups);
    let merged = measure(scale.reps, || {
        assert_eq!(rollup(Query::scan_delta(&live_src)), live_groups);
    });

    // Compaction: drain the buffer through the dynamic encoder into a
    // fresh read-optimized table (fresh delta per rep — the cost is the
    // whole rebuild, not an amortized slice of it).
    let merged_rows = live.merged_rows();
    let compact = measure(scale.reps, || {
        let mut dt = DeltaTable::from_eager(Arc::clone(&base));
        dt.append_rows(&batch).expect("append");
        dt.delete(&dead).expect("delete");
        let t = dt.compact().expect("compact");
        assert_eq!(t.row_count() as u64, merged_rows);
    });

    // Post-compaction scan: the rebuilt base answers the query alone.
    let rebuilt = live.compact().expect("compact");
    let post = measure(scale.reps, || {
        assert_eq!(rollup(Query::scan(&rebuilt)), live_groups);
    });

    println!("{:<22} {:>12}", "path", "best (ms)");
    for (name, t) in [
        ("append", append),
        ("plain scan", plain),
        ("empty merged scan", empty),
        ("live merged scan", merged),
        ("compact", compact),
        ("post-compaction scan", post),
    ] {
        println!("{:<22} {:>12.3}", name, t.as_secs_f64() * 1e3);
    }
    let overhead = empty.as_secs_f64() / plain.as_secs_f64().max(1e-9);
    println!("\nempty-delta merged-scan overhead over plain scan: {overhead:.2}x");

    report.timing("append_batch", append);
    report.timing("plain_scan", plain);
    report.timing("empty_merged_scan", empty);
    report.timing("live_merged_scan", merged);
    report.timing("compact", compact);
    report.timing("post_compaction_scan", post);
    report.metric(
        "append_rows_per_s",
        appends as f64 / append.as_secs_f64().max(1e-9),
        "rows/s",
        Direction::Higher,
        2.5,
    );
    // The acceptance criterion: an idle delta's merged scan stays within
    // gate noise of the plain scan.
    report.metric(
        "empty_merged_overhead",
        overhead,
        "x",
        Direction::Lower,
        1.6,
    );
    report.metric_timing("live_merged_scan_ns", merged, 2.0);
    report.metric_timing("compact_ns", compact, 2.0);
    report.metric_timing("post_compaction_scan_ns", post, 2.0);
    report.registry_snapshot();
    report.write();
}

//! Experiment E6 — Figure 9: integer width reduction.
//!
//! Histogram of integral scalar column widths after import with encodings
//! on (integers are parsed at the default width of 8 bytes). Paper shape:
//! about three quarters of integer columns narrow, often to one byte —
//! values in a very small range near zero.

use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_textscan::{import_file, ScanMode};
use tde_types::{DataType, Width};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 9", "integer width reduction (encodings on)");
    let small_dir = tpch_files(scale.sf);
    let large_dir = tpch_files(scale.sf_large);

    let mut histogram = [0usize; 4];
    let mut per_table = Vec::new();
    let mut collect = |name: &str, path: std::path::PathBuf, table: Option<TpchTable>| {
        let opts = match table {
            Some(t) => import_options(t, true, true, ScanMode::All),
            None => flights_options(true, true, ScanMode::All),
        };
        let r = import_file(&path, &opts).unwrap();
        let mut widths = Vec::new();
        for col in &r.table.columns {
            if matches!(
                col.dtype,
                DataType::Integer | DataType::Date | DataType::Timestamp
            ) {
                let slot = Width::ALL
                    .iter()
                    .position(|&w| w == col.metadata.width)
                    .unwrap();
                histogram[slot] += 1;
                widths.push(format!("{}={}", col.name, col.metadata.width));
            }
        }
        per_table.push((name.to_owned(), widths));
    };

    for table in SF1_TABLES {
        collect(table.name(), small_dir.join(table.file_name()), Some(table));
    }
    collect(
        "lineitem",
        large_dir.join(TpchTable::Lineitem.file_name()),
        Some(TpchTable::Lineitem),
    );
    collect("flights", flights_file(scale.flights_rows), None);

    for (name, widths) in &per_table {
        println!("{:<12} {}", name, widths.join("  "));
    }
    let total: usize = histogram.iter().sum();
    println!("\ninteger width histogram over {total} integral columns:");
    for (w, n) in Width::ALL.iter().zip(histogram) {
        println!(
            "  {:>3}: {:>3} columns {}",
            w.to_string(),
            n,
            "#".repeat(n.min(60))
        );
    }
    let narrowed: usize = histogram[..3].iter().sum();
    println!(
        "\n{narrowed}/{total} ({:.0}%) of integral columns narrowed below 8 bytes",
        100.0 * narrowed as f64 / total.max(1) as f64
    );
    println!("Paper check: roughly three quarters narrow, often to one byte.");
}

//! Experiment E8 — §4.3: order-preserving exchange.
//!
//! Parallelizing a filter with an exchange disturbs block order; when a
//! FlowTable encoder sits downstream, disturbed order can make the final
//! encoding much worse and the column physically larger. The strategic
//! optimizer therefore forces order-preserving routing, which the paper
//! measured at a 10–15 % overhead.
//!
//! This harness measures both effects: the time overhead of the
//! order-preserving constraint, and the physical-size blowup when the
//! constraint is dropped.

use std::sync::Arc;
use tde_bench::*;
use tde_exec::exchange::{BlockFn, Exchange, Routing};
use tde_exec::flow_table::{flow_table, FlowTableOptions};
use tde_exec::scan::TableScan;
use tde_exec::{Block, Operator};
use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
use tde_types::DataType;

/// A dense ascending id column: in order it encodes as a tiny delta
/// stream; with block order disturbed, the deltas blow up and the column
/// physically grows — the §4.3 hazard.
fn build_table(rows: i64) -> Arc<Table> {
    let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
    let mut val = ColumnBuilder::new("val", DataType::Integer, EncodingPolicy::default());
    for i in 0..rows {
        id.append_i64(i);
        val.append_i64(i % 89);
    }
    Arc::new(Table::new(
        "t",
        vec![id.finish().column, val.finish().column],
    ))
}

/// The parallel per-block work: a filter plus per-row computation with
/// deliberately uneven cost across blocks, so completion order scrambles.
fn work() -> BlockFn {
    Arc::new(|mut b: Block| {
        let keep: Vec<bool> = b.columns[1].iter().map(|&v| v % 89 < 60).collect();
        b.filter(&keep);
        let extra = (b.columns[0].first().copied().unwrap_or(0) % 5) as usize;
        for _ in 0..=extra {
            for v in &mut b.columns[1] {
                *v = (*v).wrapping_mul(2654435761u32 as i64) % 97;
            }
        }
        b
    })
}

/// Timing: exchange + drain only, isolating the routing overhead from the
/// downstream encoder (whose cost itself depends on the received order).
fn run_timing(table: &Arc<Table>, routing: Routing, workers: usize) -> f64 {
    let start = std::time::Instant::now();
    let scan = Box::new(TableScan::new(table.clone()));
    let schema = scan.schema().clone();
    let ex = Exchange::new(scan, work(), workers, routing, schema);
    let blocks = tde_exec::drain(Box::new(ex));
    std::hint::black_box(blocks.len());
    start.elapsed().as_secs_f64()
}

/// Size: run the full pipeline into a FlowTable encoder.
fn run_size(table: &Arc<Table>, routing: Routing, workers: usize) -> u64 {
    let scan = Box::new(TableScan::new(table.clone()));
    let schema = scan.schema().clone();
    let ex = Exchange::new(scan, work(), workers, routing, schema);
    let built = flow_table(Box::new(ex), "result", FlowTableOptions::default());
    built.table.physical_size()
}

fn main() {
    let scale = Scale::from_env();
    let rows = (scale.rle_small as i64).max(1_000_000);
    banner(
        "§4.3 (E8)",
        "order-preserving exchange: overhead and encoding quality",
    );
    println!("rows={rows}, workers=4, downstream FlowTable encodes the result\n");
    let table = build_table(rows);

    println!(
        "{:<22} {:>12} {:>16}",
        "routing", "exchange (s)", "encoded bytes"
    );
    let mut results = Vec::new();
    for (name, routing) in [
        ("as-completed", Routing::AsCompleted),
        ("order-preserving", Routing::OrderPreserving),
    ] {
        let mut best = f64::MAX;
        for _ in 0..scale.reps.max(3) {
            best = best.min(run_timing(&table, routing, 4));
        }
        let size = run_size(&table, routing, 4);
        println!("{:<22} {:>12.3} {:>16}", name, best, size);
        results.push((best, size));
    }
    let overhead = 100.0 * (results[1].0 / results[0].0 - 1.0);
    let blowup = 100.0 * (results[0].1 as f64 / results[1].1 as f64 - 1.0);
    println!("\norder preservation overhead: {overhead:.0}% (paper: 10–15%)");
    println!("encoding-size penalty of disturbed order: {blowup:.0}% larger");
    println!("(the penalty is why the strategic optimizer forces preservation");
    println!(" upstream of encoders despite the routing overhead)");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores == 1 {
        println!("(single core: worker completion order barely scrambles, so the");
        println!(" routing overhead reads as noise; the size penalty is the robust");
        println!(" signal on this hardware)");
    }
}

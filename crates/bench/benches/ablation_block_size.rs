//! Ablation A1: decompression block size.
//!
//! The paper fixes the block size to the engine's block iteration size so
//! one decode call serves one execution block (§3.1). This ablation
//! quantifies that choice: encode/decode throughput and random-access
//! cost for frame-of-reference and delta streams across block sizes.
//!
//! Expected shape: decode throughput rises with block size (less per-block
//! overhead) and saturates around 1 K values; random access into delta
//! streams *degrades* with block size (longer within-block walks) — the
//! 1024-value choice balances the two.

use std::time::Instant;
use tde_bench::{banner, Scale};
use tde_encodings::{delta, frame, EncodedStream};
use tde_types::Width;

const N: usize = 1 << 20;

fn build(block_size: usize, kind: &str) -> EncodedStream {
    let buf = match kind {
        "for" => frame::new_stream(Width::W8, block_size, true, 0, 10),
        "delta" => delta::new_stream(Width::W8, block_size, true, 0, 2),
        _ => unreachable!(),
    };
    let mut s = EncodedStream::from_buf(buf);
    let data: Vec<i64> = match kind {
        "for" => (0..N as i64).map(|i| (i * 37) % 1000).collect(),
        _ => {
            let mut v = 0i64;
            (0..N as i64)
                .map(|i| {
                    v += (i % 4) & 3;
                    v
                })
                .collect()
        }
    };
    for chunk in data.chunks(block_size) {
        s.append_block(chunk).unwrap();
    }
    s
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation A1", "decompression block size (values per block)");
    println!(
        "{:>6} {:>8} {:>14} {:>14} {:>16}",
        "kind", "block", "encode Mv/s", "decode Mv/s", "random ns/access"
    );
    for kind in ["for", "delta"] {
        for block_size in [128usize, 256, 512, 1024, 4096, 16384] {
            // Encode.
            let t0 = Instant::now();
            let mut s = None;
            for _ in 0..scale.reps.max(2) {
                s = Some(build(block_size, kind));
            }
            let encode_rate = (N * scale.reps.max(2)) as f64 / t0.elapsed().as_secs_f64() / 1e6;
            let s = s.unwrap();
            // Decode.
            let t0 = Instant::now();
            let mut out = Vec::with_capacity(block_size);
            let mut sink = 0i64;
            for _ in 0..scale.reps.max(2) {
                for b in 0..s.block_count() {
                    out.clear();
                    s.decode_block(b, &mut out);
                    sink = sink.wrapping_add(out[0]);
                }
            }
            let decode_rate = (N * scale.reps.max(2)) as f64 / t0.elapsed().as_secs_f64() / 1e6;
            // Random access.
            let probes = 100_000u64;
            let t0 = Instant::now();
            for i in 0..probes {
                let idx = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % s.len();
                sink = sink.wrapping_add(s.get(idx));
            }
            let random_ns = t0.elapsed().as_nanos() as f64 / probes as f64;
            std::hint::black_box(sink);
            println!(
                "{:>6} {:>8} {:>14.1} {:>14.1} {:>16.1}",
                kind, block_size, encode_rate, decode_rate, random_ns
            );
        }
    }
    println!("\nThe 1024-value default matches the execution block size (one decode");
    println!("per block) and sits at the knee of the decode curve; delta random");
    println!("access shows why bigger blocks are not free.");
}

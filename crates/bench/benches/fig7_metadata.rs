//! Experiment E4 — Figure 7: metadata properties detected.
//!
//! Total count of extracted metadata properties (sorted / dense / unique /
//! min / max / cardinality / nullability) across the column sets, with
//! encodings on and off (heap acceleration on for both, as in the paper).
//!
//! Paper shape: with encoding off almost nothing is detected — the few
//! detections owe to fortuitous circumstances like accelerator domain
//! statistics; with encoding on, metadata extraction is nearly free and
//! nearly complete.

use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_textscan::{import_file, ScanMode};

fn detected(result: &tde_textscan::ImportResult) -> usize {
    result
        .table
        .columns
        .iter()
        .map(|c| c.metadata.detected_count())
        .sum()
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7",
        "metadata properties detected (encoding off vs on)",
    );
    println!(
        "{:<12} {:>8} {:>8} {:>8}",
        "table", "columns", "enc off", "enc on"
    );
    let small_dir = tpch_files(scale.sf);
    let large_dir = tpch_files(scale.sf_large);

    let mut sum = [0usize; 2];
    let mut run = |name: &str, path: std::path::PathBuf, table: Option<TpchTable>| {
        let mut counts = [0usize; 2];
        let mut ncols = 0;
        for (i, enc) in [false, true].into_iter().enumerate() {
            let opts = match table {
                Some(t) => import_options(t, enc, true, ScanMode::All),
                None => flights_options(enc, true, ScanMode::All),
            };
            let r = import_file(&path, &opts).unwrap();
            counts[i] = detected(&r);
            ncols = r.table.columns.len();
        }
        println!(
            "{:<12} {:>8} {:>8} {:>8}",
            name, ncols, counts[0], counts[1]
        );
        sum[0] += counts[0];
        sum[1] += counts[1];
    };

    for table in SF1_TABLES {
        run(table.name(), small_dir.join(table.file_name()), Some(table));
    }
    run(
        "lineitem",
        large_dir.join(TpchTable::Lineitem.file_name()),
        Some(TpchTable::Lineitem),
    );
    run("flights", flights_file(scale.flights_rows), None);
    println!("{:<12} {:>8} {:>8} {:>8}", "TOTAL", "", sum[0], sum[1]);
    println!("\nPaper check: the enc-on column should dwarf the enc-off column;");
    println!("enc-off detections come only from accelerator side effects.");
}

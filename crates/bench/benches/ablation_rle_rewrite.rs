//! Ablation A2 — §8: the cost of rewriting a run-length encoding.
//!
//! "The cost of rewriting a run-length encoding may be worth paying if the
//! number of blocks is small compared to the full set of data in the
//! column, but we have not investigated or quantified the use of this
//! technique." — quantified here.
//!
//! Two routes to a dictionary-compressed column from RLE data:
//!
//! * **run decomposition** (§3.4.1/§3.4.3): decompose into value/count
//!   streams, dictionary-compress the values, rebuild — O(runs);
//! * **full re-encode**: decode every row and re-encode — O(rows).
//!
//! The sweep varies average run length; the decomposition route's
//! advantage grows linearly with it.

use std::time::Instant;
use tde_bench::{banner, Scale};
use tde_encodings::{EncodedStream, BLOCK_SIZE};
use tde_storage::{convert, Column};
use tde_types::{DataType, Width};

fn rle_column(rows: u64, run_len: u64) -> Column {
    let mut s = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W2);
    let mut block = Vec::with_capacity(BLOCK_SIZE);
    let mut v = 0i64;
    let mut in_run = 0u64;
    for _ in 0..rows {
        block.push(v * 100);
        in_run += 1;
        if in_run == run_len {
            in_run = 0;
            v = (v + 1) % 50;
        }
        if block.len() == BLOCK_SIZE {
            s.append_block(&block).unwrap();
            block.clear();
        }
    }
    s.append_block(&block).unwrap();
    Column::scalar("v", DataType::Integer, s)
}

fn main() {
    let scale = Scale::from_env();
    let rows = scale.rle_small.max(1_000_000);
    banner(
        "Ablation A2 (§8)",
        "RLE rewrite: run decomposition vs full re-encode",
    );
    println!("rows = {rows}\n");
    println!(
        "{:>9} {:>9} {:>16} {:>16} {:>9}",
        "run len", "runs", "decompose (s)", "re-encode (s)", "speedup"
    );
    for run_len in [16u64, 64, 256, 1024, 4096, 16384] {
        let col = rle_column(rows, run_len);
        let runs = col.data.rle_runs().map_or(0, |r| r.len());

        // Route 1: run decomposition (O(runs)).
        let mut t_dec = f64::MAX;
        for _ in 0..scale.reps.max(2) {
            let mut c = col.clone();
            let t0 = Instant::now();
            convert::rle_to_dict_compression(&mut c);
            t_dec = t_dec.min(t0.elapsed().as_secs_f64());
            assert!(convert::validate_array_compression(&c));
        }

        // Route 2: full decode + re-encode (O(rows)).
        let mut t_full = f64::MAX;
        for _ in 0..scale.reps.max(2) {
            let mut c = col.clone();
            let t0 = Instant::now();
            let ok = convert::reencode_as_dictionary_full(&mut c);
            t_full = t_full.min(t0.elapsed().as_secs_f64());
            assert!(ok);
        }
        println!(
            "{:>9} {:>9} {:>16.4} {:>16.4} {:>8.1}x",
            run_len,
            runs,
            t_dec,
            t_full,
            t_full / t_dec
        );
    }
    println!("\nThe decomposition route costs O(runs): its advantage over the");
    println!("O(rows) re-encode grows linearly with run length — the paper's");
    println!("'worth paying if the number of blocks is small' condition.");
}

//! Compressed-domain filter kernels vs decode-then-eval.
//!
//! A selective predicate over (a) a run-length column with long runs and
//! (b) a dictionary-encoded column, each alongside a fetched rider
//! column. Three arms per shape:
//!
//! 1. `kernel`   — `TableScan::with_pushed(pred, false)`: the §3.1
//!    per-encoding kernel answers in the compressed domain and skips
//!    non-matching blocks without decoding either column;
//! 2. `fallback` — the same scan pinned to decode-then-eval;
//! 3. `filter`   — a `Filter` operator above a plain scan (the control
//!    the optimizer would build with pushdown disabled).
//!
//! The headline number is `rle_selective_speedup` (kernel vs filter on
//! the RLE shape): run skipping must clear 2× for the pushdown to pay
//! for itself.

use std::sync::Arc;
use tde_bench::*;
use tde_encodings::{EncodedStream, BLOCK_SIZE};
use tde_exec::expr::CmpOp;
use tde_exec::filter::Filter;
use tde_exec::scan::TableScan;
use tde_exec::{BoxOp, Expr};
use tde_storage::{Column, Table};
use tde_types::{DataType, Width};

fn stream_of(data: &[i64], mut s: EncodedStream) -> EncodedStream {
    for c in data.chunks(BLOCK_SIZE) {
        s.append_block(c).unwrap();
    }
    s
}

/// `rows` rows in runs of ~`run_len`, values cycling 0..`domain`.
fn rle_table(rows: u64, run_len: u64, domain: i64) -> Arc<Table> {
    let data: Vec<i64> = (0..rows).map(|i| ((i / run_len) as i64) % domain).collect();
    let rid: Vec<i64> = (0..rows as i64).collect();
    Arc::new(Table::new(
        "rle",
        vec![
            Column::scalar(
                "v",
                DataType::Integer,
                stream_of(
                    &data,
                    EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W4),
                ),
            ),
            Column::scalar(
                "rid",
                DataType::Integer,
                stream_of(&rid, EncodedStream::new_raw(Width::W8, true)),
            ),
        ],
    ))
}

/// `rows` rows over a 16-entry dictionary, striped so every block holds
/// every value (the kernel skips rows, not whole blocks).
fn dict_table(rows: u64) -> Arc<Table> {
    let data: Vec<i64> = (0..rows).map(|i| ((i * 7) % 16) as i64).collect();
    let rid: Vec<i64> = (0..rows as i64).collect();
    Arc::new(Table::new(
        "dict",
        vec![
            Column::scalar(
                "v",
                DataType::Integer,
                stream_of(&data, EncodedStream::new_dict(Width::W8, true, 4)),
            ),
            Column::scalar(
                "rid",
                DataType::Integer,
                stream_of(&rid, EncodedStream::new_raw(Width::W8, true)),
            ),
        ],
    ))
}

fn count_rows(mut op: BoxOp) -> u64 {
    let mut n = 0;
    while let Some(b) = op.next_block() {
        n += b.len as u64;
    }
    n
}

fn scan(t: &Arc<Table>) -> BoxOp {
    Box::new(TableScan::new(Arc::clone(t)))
}

fn arm(t: &Arc<Table>, pred: &Expr, which: &str) -> u64 {
    match which {
        "kernel" => count_rows(Box::new(
            TableScan::new(Arc::clone(t)).with_pushed(pred.clone(), false),
        )),
        "fallback" => count_rows(Box::new(
            TableScan::new(Arc::clone(t)).with_pushed(pred.clone(), true),
        )),
        _ => count_rows(Box::new(Filter::new(scan(t), pred.clone()))),
    }
}

fn bench_shape(
    label: &str,
    t: &Arc<Table>,
    pred: &Expr,
    reps: usize,
    report: &mut BenchReport,
) -> f64 {
    let mut counts = [0u64; 3];
    let mut times = [std::time::Duration::ZERO; 3];
    for (i, which) in ["filter", "fallback", "kernel"].iter().enumerate() {
        times[i] = measure(reps, || {
            counts[i] = arm(t, pred, which);
        });
        report.timing(&format!("{label} {which}"), times[i]);
    }
    // Tracked metric name: first two label tokens, e.g. "rle_eq_kernel_ns".
    let slug: Vec<&str> = label.split_whitespace().take(2).collect();
    report.metric_timing(&format!("{}_kernel_ns", slug.join("_")), times[2], 2.0);
    assert_eq!(counts[0], counts[1], "{label}: fallback disagrees");
    assert_eq!(counts[0], counts[2], "{label}: kernel disagrees");
    let speedup = times[0].as_secs_f64() / times[2].as_secs_f64();
    println!(
        "{label:<28} {} rows out  filter {:>9.4}s  fallback {:>9.4}s  kernel {:>9.4}s  {speedup:>6.2}x",
        counts[0],
        times[0].as_secs_f64(),
        times[1].as_secs_f64(),
        times[2].as_secs_f64(),
    );
    speedup
}

fn main() {
    let scale = Scale::from_env();
    let rows = scale.rle_large.max(2_000_000);
    let mut report = BenchReport::new("kernel_filter");
    banner(
        "Kernel filter",
        "compressed-domain predicate kernels vs decode-then-eval",
    );
    println!("(rows={rows}, reps={})\n", scale.reps);

    let rle = rle_table(rows, 1_500, 200);
    let dict = dict_table(rows);

    // Selective: 1 of 200 run values → nearly every block skipped whole.
    let selective = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(42));
    let rle_selective = bench_shape("rle eq (0.5%)", &rle, &selective, scale.reps, &mut report);

    // Range: ~25% of runs qualify — partial skipping.
    let range = Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(50));
    let rle_range = bench_shape("rle lt (25%)", &rle, &range, scale.reps, &mut report);

    // Dictionary-domain: 1 of 16 entries, striped through every block.
    let dict_eq = Expr::cmp(CmpOp::Eq, Expr::col(0), Expr::int(3));
    let dict_selective = bench_shape("dict eq (6%)", &dict, &dict_eq, scale.reps, &mut report);

    report.json(
        "summary",
        format!(
            "{{\"rows\":{rows},\"rle_selective_speedup\":{rle_selective:.3},\
             \"rle_range_speedup\":{rle_range:.3},\
             \"dict_selective_speedup\":{dict_selective:.3}}}"
        ),
    );
    // Speedups are ratios of two timings taken seconds apart, so they are
    // steadier than the raw timings; still leave headroom for CI noise.
    report.metric(
        "rle_selective_speedup",
        rle_selective,
        "x",
        Direction::Higher,
        2.5,
    );
    report.metric("rle_range_speedup", rle_range, "x", Direction::Higher, 2.5);
    report.metric(
        "dict_selective_speedup",
        dict_selective,
        "x",
        Direction::Higher,
        2.5,
    );
    report.registry_snapshot();
    let path = report.write();
    println!("\nwrote {}", path.display());
    assert!(
        rle_selective >= 2.0,
        "selective RLE kernel speedup below 2x: {rle_selective:.2}x"
    );
}

//! Ablation A3 — §8: parallel ordered aggregation on rolled-up dates.
//!
//! The paper's future-work proposal, implemented and measured: roll a
//! daily IndexTable up to month starts with `MIN(start)` / `SUM(count)`
//! (an order-preserving calculation performed on the *index*, not the
//! rows), partition the index range, and run the IndexedScan + ordered
//! aggregation for each partition on its own core.

use std::sync::Arc;
use std::time::Instant;
use tde_bench::{banner, BenchReport, Direction, Scale};
use tde_core::exec::aggregate::AggSpec;
use tde_core::exec::expr::AggFunc;
use tde_core::exec::index_table::{index_table, rollup_index};
use tde_core::exec::parallel::parallel_indexed_aggregate;
use tde_encodings::{EncodedStream, BLOCK_SIZE};
use tde_storage::{Column, Table};
use tde_types::datetime::{days_from_ymd, trunc_to_month};
use tde_types::{DataType, Width};

fn build(rows: u64) -> Arc<Table> {
    // Ten years of sorted daily dates plus a payload.
    let days = 3650u64;
    let per_day = (rows / days).max(1);
    let d0 = days_from_ymd(1998, 1, 1);
    let mut date = EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W4);
    let mut pay_data = Vec::with_capacity(rows as usize);
    let mut block = Vec::with_capacity(BLOCK_SIZE);
    for d in 0..days {
        for j in 0..per_day {
            block.push(d0 + d as i64);
            pay_data.push(((d * 31 + j) % 997) as i64);
            if block.len() == BLOCK_SIZE {
                date.append_block(&block).unwrap();
                block.clear();
            }
        }
    }
    date.append_block(&block).unwrap();
    let pay = tde_encodings::dynamic::encode_all(&pay_data, Width::W8, true).stream;
    Arc::new(Table::new(
        "events",
        vec![
            Column::scalar("day", DataType::Date, date),
            Column::scalar("pay", DataType::Integer, pay),
        ],
    ))
}

fn main() {
    let scale = Scale::from_env();
    let mut report = BenchReport::new("parallel_rollup");
    let rows = scale.rle_large / 2;
    banner(
        "§8 (A3)",
        "parallel ordered aggregation on a rolled-up date index",
    );
    println!("building {rows} rows over 10 years of daily dates ...");
    let t = build(rows);
    let (daily, _) = index_table(&t.columns[0], "daily");
    let (monthly, _) = rollup_index(&daily, trunc_to_month, "monthly");
    println!(
        "daily index: {} rows → monthly index: {} rows\n",
        daily.row_count(),
        monthly.row_count()
    );
    let aggs = vec![
        AggSpec::new(AggFunc::Count, 1, "n"),
        AggSpec::new(AggFunc::Max, 1, "mx"),
    ];

    println!("{:>8} {:>10} {:>9}", "workers", "seconds", "speedup");
    let mut baseline = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let mut best = f64::MAX;
        let mut groups = 0;
        for _ in 0..scale.reps.max(2) {
            let t0 = Instant::now();
            let (_, blocks) =
                parallel_indexed_aggregate(&monthly, &t, &["pay"], aggs.clone(), workers);
            best = best.min(t0.elapsed().as_secs_f64());
            groups = blocks.iter().map(|b| b.len).sum();
        }
        assert_eq!(groups, 120, "ten years of months");
        if workers == 1 {
            baseline = best;
        }
        println!("{:>8} {:>10.4} {:>8.2}x", workers, best, baseline / best);
        report.json(
            &format!("workers={workers}"),
            format!(
                "{{\"elapsed_ns\":{},\"speedup\":{:.3}}}",
                (best * 1e9) as u64,
                baseline / best
            ),
        );
        report.metric_timing(
            &format!("workers{workers}_ns"),
            std::time::Duration::from_secs_f64(best),
            2.0,
        );
        if workers > 1 {
            report.metric(
                &format!("speedup_{workers}w"),
                baseline / best,
                "x",
                Direction::Higher,
                2.5,
            );
        }
    }
    report.table(&t);
    report.registry_snapshot();
    report.write();
    println!("\nPartition boundaries fall between months, so the concatenated");
    println!("partials are the exact ordered result — no merge, no hash table.");
}

//! Experiment E3 — Figure 6: sorted string heaps.
//!
//! Counts the string columns whose heaps end up sorted, with and without
//! encodings, over the small table set and the two large tables.
//!
//! Paper shape: without encoding only a handful of heaps are sorted
//! (fortuitous insertion order); with encoding on, *all* heaps are sorted
//! except the ones whose domain is too large for dictionary encoding
//! (l_comment and friends).

use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_storage::Compression;
use tde_textscan::{import_file, ImportResult, ScanMode};

fn count_heaps(result: &ImportResult) -> (usize, usize) {
    let mut sorted = 0;
    let mut total = 0;
    for col in &result.table.columns {
        if let Compression::Heap { sorted: s, .. } = &col.compression {
            total += 1;
            sorted += usize::from(*s);
        }
    }
    (sorted, total)
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 6", "sorted string heaps with and without encoding");
    println!(
        "{:<12} {:>22} {:>22}",
        "table", "enc off (sorted/total)", "enc on (sorted/total)"
    );
    let small_dir = tpch_files(scale.sf);
    let large_dir = tpch_files(scale.sf_large);
    let flights = flights_file(scale.flights_rows);

    let mut totals = [(0usize, 0usize); 2];
    let mut row = |name: &str, results: [(usize, usize); 2]| {
        println!(
            "{:<12} {:>22} {:>22}",
            name,
            format!("{}/{}", results[0].0, results[0].1),
            format!("{}/{}", results[1].0, results[1].1)
        );
        for (i, (s, t)) in results.into_iter().enumerate() {
            totals[i].0 += s;
            totals[i].1 += t;
        }
    };

    for table in SF1_TABLES {
        let mut results = [(0, 0); 2];
        for (i, enc) in [false, true].into_iter().enumerate() {
            let opts = import_options(table, enc, true, ScanMode::All);
            let r = import_file(small_dir.join(table.file_name()), &opts).unwrap();
            results[i] = count_heaps(&r);
        }
        row(table.name(), results);
    }
    for (name, path, is_flights) in [
        (
            "lineitem",
            large_dir.join(TpchTable::Lineitem.file_name()),
            false,
        ),
        ("flights", flights, true),
    ] {
        let mut results = [(0, 0); 2];
        for (i, enc) in [false, true].into_iter().enumerate() {
            let opts = if is_flights {
                flights_options(enc, true, ScanMode::All)
            } else {
                import_options(TpchTable::Lineitem, enc, true, ScanMode::All)
            };
            let r = import_file(&path, &opts).unwrap();
            results[i] = count_heaps(&r);
        }
        row(name, results);
    }
    println!(
        "{:<12} {:>22} {:>22}",
        "TOTAL",
        format!("{}/{}", totals[0].0, totals[0].1),
        format!("{}/{}", totals[1].0, totals[1].1)
    );
    println!("\nPaper check: with encoding on, every heap sorts except the large");
    println!("low-duplication comment columns; without it only fortuitously");
    println!("ordered inputs are sorted.");
}

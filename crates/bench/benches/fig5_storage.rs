//! Experiment E2 — Figure 5: compression savings.
//!
//! Logical vs physical sizes of the two large tables under every
//! encoding × acceleration combination, with a per-algorithm breakdown of
//! the physical bytes, plus the §6.2 whole-database comparison over the
//! small-table set (E11).
//!
//! Paper shape: ~84 % savings vs the flat file for both large tables;
//! acceleration matters much more for Flights (all-small-domain strings)
//! than lineitem (dominated by l_comment); TPC-H's artificial regularity
//! creates affine opportunities (fixed-width unique names).

use std::collections::BTreeMap;
use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_storage::{Database, Table};
use tde_textscan::{import_file, ScanMode};

fn breakdown(table: &Table) -> BTreeMap<&'static str, u64> {
    let mut by_alg: BTreeMap<&'static str, u64> = BTreeMap::new();
    for col in &table.columns {
        *by_alg.entry(col.data.algorithm().name()).or_default() += col.data.physical_size() as u64;
        match &col.compression {
            tde_storage::Compression::Heap { heap, .. } => {
                *by_alg.entry("heap").or_default() += heap.byte_size() as u64;
            }
            tde_storage::Compression::Array { dictionary, .. } => {
                *by_alg.entry("dict-compr").or_default() += (dictionary.len() * 8) as u64;
            }
            tde_storage::Compression::None => {}
        }
    }
    by_alg
}

fn run_table(
    label: &str,
    path: &std::path::Path,
    opts_for: &dyn Fn(bool, bool) -> tde_textscan::ImportOptions,
) {
    let flat = file_size(path);
    println!("\n-- {label} (flat file {} MB) --", mb(flat));
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "config", "logical MB", "phys MB", "vs flat", "vs logical"
    );
    for (enc, accel) in [(false, false), (false, true), (true, false), (true, true)] {
        let opts = opts_for(enc, accel);
        let result = import_file(path, &opts).unwrap();
        let (logical, physical) = (result.table.logical_size(), result.table.physical_size());
        println!(
            "{:<22} {:>10} {:>10} {:>7.0}% {:>7.0}%",
            format!("enc={} accel={}", onoff(enc), onoff(accel)),
            mb(logical),
            mb(physical),
            100.0 * (1.0 - physical as f64 / flat as f64),
            100.0 * (1.0 - physical as f64 / logical as f64),
        );
        if enc && accel {
            println!("  physical breakdown by encoding:");
            for (alg, bytes) in breakdown(&result.table) {
                println!("    {:<10} {:>10} MB", alg, mb(bytes));
            }
        }
    }
}

fn onoff(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Figure 5", "compression savings (logical vs physical size)");
    let tpch_dir = tpch_files(scale.sf_large);
    run_table(
        "lineitem",
        &tpch_dir.join(TpchTable::Lineitem.file_name()),
        &|enc, accel| import_options(TpchTable::Lineitem, enc, accel, ScanMode::All),
    );
    run_table(
        "flights",
        &flights_file(scale.flights_rows),
        &|enc, accel| flights_options(enc, accel, ScanMode::All),
    );

    // E11: whole-database size over the SF table set, with and without
    // encodings (the paper's "660 MB → −140 MB" comparison at SF-1).
    banner("§6.2", "whole-database size over the small table set (E11)");
    let small_dir = tpch_files(scale.sf);
    let mut sizes = Vec::new();
    for enc in [false, true] {
        let mut db = Database::new();
        for t in SF1_TABLES {
            let opts = import_options(t, enc, true, ScanMode::All);
            let result = import_file(small_dir.join(t.file_name()), &opts).unwrap();
            db.add_table(result.table);
        }
        let size = db.serialized_size();
        sizes.push(size);
        println!(
            "encodings {:>3}: single-file database = {} MB",
            onoff(enc),
            mb(size)
        );
    }
    println!(
        "encoding the database saved {} MB ({:.0}%)",
        mb(sizes[0].saturating_sub(sizes[1])),
        100.0 * (1.0 - sizes[1] as f64 / sizes[0] as f64)
    );
}

//! Timeline tracing overhead — the cost of the always-on observability.
//!
//! The fig10 workload shape (pushed filter feeding a hash rollup) run
//! three ways over the same table: with every observability layer off
//! (the `QueryObservation::begin() == None` fast path), with metrics
//! alone, and with timeline tracing on. The headline metrics are the
//! traced and untraced times plus the traced-over-untraced overhead in
//! percent; the acceptance target is "tracing *disabled* costs ≤ 2%",
//! which the 10M-call budget test in `tde-obs` pins directly — here the
//! untraced leg is the committed baseline so the gate catches any new
//! cost creeping into the disabled path.
//!
//! Knobs: `TDE_TRACE_ROWS` (default 2 000 000), `TDE_REPS`.

use std::sync::Arc;
use std::time::Instant;
use tde_bench::{banner, BenchReport, Direction, Scale};
use tde_core::exec::expr::{AggFunc, CmpOp, Expr};
use tde_core::Query;
use tde_encodings::BLOCK_SIZE;
use tde_storage::{Column, Table};
use tde_types::{DataType, Width};

const GROUPS: i64 = 64;

fn rows_from_env() -> u64 {
    std::env::var("TDE_TRACE_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

/// RLE-friendly group runs plus a high-entropy value column, same shape
/// as `morsel_pipeline`.
fn build(rows: u64) -> Arc<Table> {
    let mut g = tde_encodings::EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W4);
    let mut v_data = Vec::with_capacity(rows as usize);
    let mut block = Vec::with_capacity(BLOCK_SIZE);
    for i in 0..rows as i64 {
        block.push((i / 1024) % GROUPS);
        v_data.push((i.wrapping_mul(2654435761) ^ (i << 7)) % 1_000_003);
        if block.len() == BLOCK_SIZE {
            g.append_block(&block).unwrap();
            block.clear();
        }
    }
    g.append_block(&block).unwrap();
    let v = tde_encodings::dynamic::encode_all(&v_data, Width::W8, true).stream;
    Arc::new(Table::new(
        "events",
        vec![
            Column::scalar("g", DataType::Integer, g),
            Column::scalar("v", DataType::Integer, v),
        ],
    ))
}

fn pipeline(t: &Arc<Table>) -> Query {
    Query::scan(t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(500_000)))
        .aggregate(
            vec![0],
            vec![
                (AggFunc::Count, 1, "n"),
                (AggFunc::Sum, 1, "total"),
                (AggFunc::Max, 1, "top"),
            ],
        )
        .with_parallelism(4)
}

fn best_of(reps: usize, t: &Arc<Table>, expected_groups: usize) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        let (_, blocks) = pipeline(t).run();
        best = best.min(t0.elapsed().as_secs_f64());
        let groups: usize = blocks.iter().map(|b| b.len).sum();
        assert_eq!(groups, expected_groups, "result changed between modes");
    }
    best
}

fn main() {
    let scale = Scale::from_env();
    let rows = rows_from_env();
    let reps = scale.reps.max(3);
    let mut report = BenchReport::new("trace_overhead");
    banner(
        "timeline tracing",
        "fig10 pipeline: observability off vs metrics vs full tracing",
    );
    println!("building {rows} rows, {GROUPS} groups ...\n");
    let t = build(rows);

    // Mode toggles: the metrics gate and the timeline gate are both
    // runtime atomics; spans stay off (no sink installed).
    let metrics_was = tde_obs::metrics::enabled();
    tde_obs::metrics::global().disable();
    let trace_was = tde_obs::timeline::set_enabled(false);

    let expected_groups = {
        let (_, blocks) = pipeline(&t).run();
        blocks.iter().map(|b| b.len).sum()
    };
    assert_eq!(expected_groups as i64, GROUPS);

    // Warm-up, then measure each mode as best-of-reps.
    let untraced = best_of(reps, &t, expected_groups);
    tde_obs::metrics::global().enable();
    let metrics_only = best_of(reps, &t, expected_groups);
    tde_obs::timeline::set_enabled(true);
    let traced = best_of(reps, &t, expected_groups);
    let ring = tde_obs::timeline::recent_traces();
    assert!(
        ring.iter().any(|tr| !tr.events.is_empty()),
        "traced runs must land event-bearing traces in the ring"
    );

    if metrics_was {
        tde_obs::metrics::global().enable();
    } else {
        tde_obs::metrics::global().disable();
    }
    tde_obs::timeline::set_enabled(trace_was);

    let overhead_pct = (traced / untraced - 1.0) * 100.0;
    let metrics_pct = (metrics_only / untraced - 1.0) * 100.0;
    println!("{:>14} {:>10} {:>10}", "mode", "seconds", "overhead");
    println!("{:>14} {:>10.4} {:>9.1}%", "untraced", untraced, 0.0);
    println!(
        "{:>14} {:>10.4} {:>9.1}%",
        "metrics", metrics_only, metrics_pct
    );
    println!("{:>14} {:>10.4} {:>9.1}%", "traced", traced, overhead_pct);

    report.json(
        "modes",
        format!(
            "{{\"untraced_ns\":{},\"metrics_ns\":{},\"traced_ns\":{},\
             \"overhead_pct\":{overhead_pct:.2}}}",
            (untraced * 1e9) as u64,
            (metrics_only * 1e9) as u64,
            (traced * 1e9) as u64,
        ),
    );
    report.metric_timing(
        "untraced_ns",
        std::time::Duration::from_secs_f64(untraced),
        2.5,
    );
    report.metric_timing("traced_ns", std::time::Duration::from_secs_f64(traced), 2.5);
    report.metric(
        "overhead_pct",
        overhead_pct.max(0.0),
        "%",
        Direction::Lower,
        5.0,
    );
    // Sanity ceiling, generous because CI boxes are noisy; the tight
    // "disabled ≤ 2%" bound is enforced by the budget test in tde-obs
    // and by the bench-gate comparison of untraced_ns to its baseline.
    assert!(
        overhead_pct < 60.0,
        "full tracing should stay a modest tax on the pipeline, \
         got {overhead_pct:.1}% (traced {traced:.4}s vs untraced {untraced:.4}s)"
    );
    report.table(&t);
    report.write();
    println!("\nThe disabled path is one relaxed atomic load per site; the traced");
    println!("path reads the clock twice per operator and once per morsel.");
}

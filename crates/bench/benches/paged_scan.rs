//! Paged storage: cold-vs-warm scan over a wide table.
//!
//! The experiment behind the buffer pool: a dashboard query touches 2 of
//! 50 columns. The v1 eager format pays for all 50 at open time; the v2
//! paged format reads the directory at open and demand-loads only the
//! two referenced columns' segments, and a repeated scan under a
//! sufficient budget is served entirely from the pool.
//!
//! Three timings, each including whatever I/O the path actually incurs:
//!
//! * `eager` — `Database::load` (whole file) + 2-column aggregate
//! * `paged cold` — `PagedDatabase::open` (directory only) + the same
//!   aggregate, fresh pool each rep
//! * `paged warm` — the same aggregate against an already-warm pool
//!
//! Writes `bench_results/BENCH_paged_scan.json`.

use tde_bench::{banner, file_size, mb, measure, BenchReport, Direction, Scale};
use tde_core::Query;
use tde_exec::expr::AggFunc;
use tde_pager::{save_v2, PagedDatabase, PagedTable};
use tde_storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde_types::DataType;

const COLS: i64 = 49;

/// A 50-column table: 49 integer columns plus one string column, wide
/// enough that eager materialization visibly dominates open time.
fn wide_db(rows: i64) -> Database {
    let mut columns = Vec::new();
    for c in 0..COLS {
        let name = format!("c{c}");
        let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
        for i in 0..rows {
            // Vary the shape per column so the dynamic encoder produces a
            // mix of FoR, dictionary and RLE streams across the table.
            b.append_i64(match c % 3 {
                0 => (i * (c + 3)) % 1000,
                1 => i / 64,
                _ => (i % 7) * 1_000_003,
            });
        }
        columns.push(b.finish().column);
    }
    let mut s = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        s.append_str(Some(
            ["lyon", "oslo", "kyiv", "lima", "bonn"][i as usize % 5],
        ));
    }
    columns.push(s.finish().column);
    let mut db = Database::new();
    db.add_table(Table::new("wide", columns));
    db
}

fn run_query(t: &PagedTable) -> usize {
    Query::scan_paged_columns(t, &["city", "c7"])
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
        .rows()
        .len()
}

fn main() {
    let scale = Scale::from_env();
    let rows = std::env::var("TDE_PAGED_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000i64);
    banner(
        "paged_scan",
        "paged storage: cold-vs-warm 2-of-50-column scan",
    );
    println!("rows={rows}, columns=50, projection touches 2\n");

    let dir = std::env::temp_dir().join("tde_bench_paged");
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let v1_path = dir.join(format!("wide_{rows}.tde"));
    let v2_path = dir.join(format!("wide_{rows}.tde2"));
    let db = wide_db(rows);
    db.save(&v1_path).expect("save v1");
    save_v2(&db, &v2_path).expect("save v2");
    drop(db);

    let mut report = BenchReport::new("paged_scan");
    report.json(
        "files",
        format!(
            "{{\"rows\":{rows},\"v1_bytes\":{},\"v2_bytes\":{}}}",
            file_size(&v1_path),
            file_size(&v2_path)
        ),
    );

    // Eager: the whole file is deserialized before the first block flows.
    let eager = measure(scale.reps, || {
        let mut db = Database::load(&v1_path).expect("load v1");
        let t = std::sync::Arc::new(db.tables.remove(0));
        let n = Query::scan_columns(&t, &["city", "c7"])
            .aggregate(vec![0], vec![(AggFunc::Sum, 1, "s")])
            .rows()
            .len();
        assert_eq!(n, 5);
    });

    // Paged cold: fresh pool each rep; only the directory and the two
    // projected columns' segments are read.
    let cold = measure(scale.reps, || {
        let db = PagedDatabase::open(&v2_path).expect("open v2");
        let t = db.table("wide").expect("table");
        assert_eq!(run_query(&t), 5);
    });

    // Paged warm: one pool, pre-warmed, every rep served from memory.
    let warm_db = PagedDatabase::open(&v2_path).expect("open v2");
    let warm_table = warm_db.table("wide").expect("table");
    run_query(&warm_table);
    let before_warm = warm_db.cache_snapshot();
    let warm = measure(scale.reps, || {
        assert_eq!(run_query(&warm_table), 5);
    });
    let after_warm = warm_db.cache_snapshot();
    assert_eq!(
        after_warm.misses, before_warm.misses,
        "warm reps must not touch the disk"
    );

    println!(
        "{:<14} {:>12} {:>14}",
        "path", "best (ms)", "file read (MB)"
    );
    for (name, t, bytes) in [
        ("eager v1", eager, file_size(&v1_path)),
        ("paged cold", cold, after_warm.bytes_read),
        ("paged warm", warm, 0),
    ] {
        println!(
            "{:<14} {:>12.3} {:>14}",
            name,
            t.as_secs_f64() * 1e3,
            mb(bytes)
        );
    }
    println!(
        "\ncold speedup over eager: {:.1}x; warm over cold: {:.1}x",
        eager.as_secs_f64() / cold.as_secs_f64().max(1e-9),
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
    println!("warm pool: {}", after_warm);

    report.timing("eager_v1_load_and_scan", eager);
    report.timing("paged_cold_open_and_scan", cold);
    report.timing("paged_warm_scan", warm);
    report.json("warm_pool", after_warm.to_json());
    report.json("warm_delta", after_warm.since(&before_warm).to_json());
    report.metric_timing("eager_v1_ns", eager, 2.0);
    report.metric_timing("paged_cold_ns", cold, 2.0);
    report.metric_timing("paged_warm_ns", warm, 2.0);
    report.metric(
        "cold_speedup_over_eager",
        eager.as_secs_f64() / cold.as_secs_f64().max(1e-9),
        "x",
        Direction::Higher,
        2.5,
    );
    // File size is deterministic for a fixed row count: flag any growth.
    report.metric(
        "v2_file_bytes",
        file_size(&v2_path) as f64,
        "bytes",
        Direction::Lower,
        1.05,
    );
    report.registry_snapshot();
    report.write();
}

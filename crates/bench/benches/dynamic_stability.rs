//! Experiment E9 — §3.2: dynamic encoding stability.
//!
//! The paper reports that encodings stabilize quickly: loading TPC-H
//! lineitem at SF-1 caused only two encoding changes, and the rewrites
//! still performed less I/O than writing the unencoded columns. This
//! harness imports lineitem and Flights and reports every column's
//! mid-load re-encoding count plus the rewrite-vs-raw I/O comparison.

use tde_bench::*;
use tde_datagen::tpch::TpchTable;
use tde_textscan::{import_file, ScanMode};

fn report(label: &str, result: &tde_textscan::ImportResult) {
    let mut total = 0u32;
    println!("\n-- {label} ({} rows) --", result.table.row_count());
    for ((name, re), col) in result.reencodings.iter().zip(&result.table.columns) {
        total += re;
        if *re > 0 {
            println!(
                "  {:<16} {} re-encodings (final encoding: {})",
                name,
                re,
                col.data.algorithm()
            );
        }
    }
    let physical = result.table.physical_size();
    let logical = result.table.logical_size();
    println!("  total mid-load encoding changes: {total}");
    println!(
        "  rewrite I/O bound: even re-writing every changed column costs ≤ physical size\n  ({} MB) vs unencoded write ({} MB)",
        mb(physical),
        mb(logical)
    );
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "§3.2 (E9)",
        "dynamic encoder stability (mid-load re-encodings)",
    );

    let dir = tpch_files(scale.sf_large);
    let opts = import_options(TpchTable::Lineitem, true, true, ScanMode::All);
    let r = import_file(dir.join(TpchTable::Lineitem.file_name()), &opts).unwrap();
    report("lineitem", &r);

    let opts = flights_options(true, true, ScanMode::All);
    let r = import_file(flights_file(scale.flights_rows), &opts).unwrap();
    report("flights", &r);

    println!("\nPaper check: a handful of changes per table at most — the encoding");
    println!("stabilizes within the first blocks.");
}

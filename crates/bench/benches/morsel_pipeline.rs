//! Morsel-driven parallel pipelines — serial vs work-stealing degrees.
//!
//! The fig10 workload shape (pushed filter feeding a hash rollup) run
//! end-to-end through the planner: `with_parallelism(d)` wraps the
//! pipeline in a `Morsel` node, the tactical layer carves the scan into
//! decompression-block morsels, and workers steal ranges off each
//! other's deques. Every parallel result is asserted byte-identical to
//! the serial run before its timing counts.
//!
//! Knobs: `TDE_MORSEL_ROWS` (default 2 000 000), `TDE_REPS`.

use std::sync::Arc;
use std::time::Instant;
use tde_bench::{banner, BenchReport, Direction, Scale};
use tde_core::exec::expr::{AggFunc, CmpOp, Expr};
use tde_core::Query;
use tde_encodings::BLOCK_SIZE;
use tde_storage::{Column, Table};
use tde_types::{DataType, Width};

const GROUPS: i64 = 64;

fn rows_from_env() -> u64 {
    std::env::var("TDE_MORSEL_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000)
}

/// Group keys in RLE-friendly runs, values high-entropy so the filter
/// and the aggregate both do real per-row work.
fn build(rows: u64) -> Arc<Table> {
    let mut g = tde_encodings::EncodedStream::new_rle(Width::W8, true, Width::W4, Width::W4);
    let mut v_data = Vec::with_capacity(rows as usize);
    let mut block = Vec::with_capacity(BLOCK_SIZE);
    for i in 0..rows as i64 {
        block.push((i / 1024) % GROUPS);
        v_data.push((i.wrapping_mul(2654435761) ^ (i << 7)) % 1_000_003);
        if block.len() == BLOCK_SIZE {
            g.append_block(&block).unwrap();
            block.clear();
        }
    }
    g.append_block(&block).unwrap();
    let v = tde_encodings::dynamic::encode_all(&v_data, Width::W8, true).stream;
    Arc::new(Table::new(
        "events",
        vec![
            Column::scalar("g", DataType::Integer, g),
            Column::scalar("v", DataType::Integer, v),
        ],
    ))
}

fn pipeline(t: &Arc<Table>, degree: usize) -> Query {
    Query::scan(t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(500_000)))
        .aggregate(
            vec![0],
            vec![
                (AggFunc::Count, 1, "n"),
                (AggFunc::Sum, 1, "total"),
                (AggFunc::Max, 1, "top"),
            ],
        )
        .with_parallelism(degree)
}

fn main() {
    let scale = Scale::from_env();
    let rows = rows_from_env();
    let mut report = BenchReport::new("morsel_pipeline");
    banner(
        "§8 morsels",
        "work-stealing morsel pipelines: filter + hash rollup vs serial",
    );
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("building {rows} rows, {GROUPS} groups ({cores} core(s) available) ...\n");
    let t = build(rows);

    let render = |schema: &tde_core::exec::block::Schema,
                  blocks: &[tde_core::exec::block::Block]| {
        let mut s = format!("{schema:?}");
        for b in blocks {
            s.push_str(&format!("|len={} cols={:?}", b.len, b.columns));
        }
        s
    };
    let (serial_schema, serial_blocks) = pipeline(&t, 1).run();
    let serial_rendered = render(&serial_schema, &serial_blocks);
    let groups: usize = serial_blocks.iter().map(|b| b.len).sum();
    assert_eq!(groups as i64, GROUPS, "every group must survive the filter");

    println!("{:>8} {:>10} {:>9}", "degree", "seconds", "speedup");
    let mut baseline = 0.0f64;
    for degree in [1usize, 2, 4, 8] {
        let mut best = f64::MAX;
        for _ in 0..scale.reps.max(2) {
            let t0 = Instant::now();
            let (schema, blocks) = pipeline(&t, degree).run();
            best = best.min(t0.elapsed().as_secs_f64());
            assert_eq!(
                serial_rendered,
                render(&schema, &blocks),
                "degree-{degree} result diverged from serial"
            );
        }
        if degree == 1 {
            baseline = best;
        }
        let speedup = baseline / best;
        println!("{:>8} {:>10.4} {:>8.2}x", degree, best, speedup);
        report.json(
            &format!("degree={degree}"),
            format!(
                "{{\"elapsed_ns\":{},\"speedup\":{speedup:.3}}}",
                (best * 1e9) as u64
            ),
        );
        report.metric_timing(
            &format!("degree{degree}_ns"),
            std::time::Duration::from_secs_f64(best),
            2.5,
        );
        if degree > 1 {
            report.metric(
                &format!("speedup_{degree}w"),
                speedup,
                "x",
                Direction::Higher,
                2.5,
            );
            // The acceptance floor only means something when the host
            // can actually run 4 workers at once.
            if degree == 4 && cores >= 4 {
                assert!(
                    speedup >= 2.0,
                    "degree-4 morsel pipeline must be >= 2x serial on a \
                     {cores}-core host, got {speedup:.2}x"
                );
            }
        }
    }
    report.table(&t);
    report.registry_snapshot();
    report.write();
    println!("\nMorsels are decompression-block ranges, so ranged scans emit the");
    println!("same blocks serial scans do and the merged rollup is byte-identical.");
}

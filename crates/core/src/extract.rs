//! Extracts: single-file databases of imported tables (paper §2.2–2.3.3),
//! plus the §8 external flat-file references: an extract can remember the
//! files its tables came from and rebuild itself when they change,
//! trading a repackaging cost for up-to-date data.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tde_storage::{Database, Table};
use tde_textscan::{import_file, ImportOptions};

/// A remembered link between a table and the flat file it was imported
/// from (paper §8).
#[derive(Debug, Clone)]
struct LinkedSource {
    table: String,
    path: PathBuf,
    fingerprint: u64,
    options: ImportOptions,
}

fn fingerprint(path: &Path) -> io::Result<u64> {
    let meta = std::fs::metadata(path)?;
    let mtime = meta
        .modified()
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_nanos() as u64);
    Ok(meta.len().rotate_left(17) ^ mtime)
}

/// An extract: a set of read-only tables that lives in one file.
#[derive(Debug, Default)]
pub struct Extract {
    db: Database,
    sources: Vec<LinkedSource>,
}

impl Extract {
    /// An empty extract.
    pub fn new() -> Extract {
        Extract::default()
    }

    /// Import a flat file as a new table. Separator, header and column
    /// types are inferred unless `options` overrides them; the columns are
    /// dynamically encoded, narrowed and annotated with metadata during
    /// the load (paper §3).
    pub fn import(
        &mut self,
        path: impl AsRef<Path>,
        options: &ImportOptions,
    ) -> io::Result<&Table> {
        let result = import_file(path, options)?;
        self.db.add_table(result.table);
        Ok(self.db.tables.last().expect("just added"))
    }

    /// Add an already-built table.
    pub fn add_table(&mut self, table: Table) {
        self.db.add_table(table);
    }

    /// The tables.
    pub fn tables(&self) -> &[Table] {
        &self.db.tables
    }

    /// Find a table by name (shared, ready for scanning).
    pub fn table(&self, name: &str) -> Option<Arc<Table>> {
        self.db.table(name).map(|t| Arc::new(t.clone()))
    }

    /// Write the whole extract to a single file (paper §2.3.3: the user
    /// must be able to pick the database in a file dialog).
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.db.save(path)
    }

    /// Load an extract from a file. (Source links are a runtime notion
    /// and do not persist in the single-file format.)
    pub fn load(path: impl AsRef<Path>) -> io::Result<Extract> {
        Ok(Extract {
            db: Database::load(path)?,
            sources: Vec::new(),
        })
    }

    /// Write the extract in the paged v2 format: block-aligned column
    /// segments behind a footer directory, openable lazily with
    /// [`Extract::open_paged`]. Crash-safe: the file is written to a
    /// temporary sibling and atomically renamed into place, so a reader
    /// (or a crash mid-save) never observes a half-written extract.
    pub fn save_paged(&self, path: impl AsRef<Path>) -> io::Result<()> {
        tde_pager::save_v2_atomic(&self.db, path)
    }

    /// As [`Extract::save_paged`], with every filesystem operation routed
    /// through an explicit [`tde_io::StorageIo`] backend — the seam the
    /// crash-consistency harness uses to inject faults into saves.
    pub fn save_paged_with_io(
        &self,
        path: impl AsRef<Path>,
        storage: &dyn tde_io::StorageIo,
    ) -> io::Result<()> {
        tde_pager::save_v2_with_aux_atomic_io(
            &self.db,
            &std::collections::HashMap::new(),
            path,
            storage,
        )
    }

    /// Open a v2 paged file lazily: only the directory is read now;
    /// column segments load on first touch through the buffer pool.
    pub fn open_paged(path: impl AsRef<Path>) -> io::Result<tde_pager::PagedDatabase> {
        tde_pager::PagedDatabase::open(path)
    }

    /// Import a flat file and remember it as the table's source, so
    /// [`Extract::refresh`] can rebuild the table when the file changes
    /// (paper §8: referencing external flat files).
    pub fn import_linked(
        &mut self,
        path: impl AsRef<Path>,
        options: &ImportOptions,
    ) -> io::Result<&Table> {
        let path = path.as_ref().to_path_buf();
        let fp = fingerprint(&path)?;
        let table = self.import(&path, options)?;
        let name = table.name.clone();
        self.sources.retain(|s| s.table != name);
        self.sources.push(LinkedSource {
            table: name.clone(),
            path,
            fingerprint: fp,
            options: options.clone(),
        });
        Ok(self.db.table(&name).expect("just imported"))
    }

    /// Re-import every linked table whose source file changed since it was
    /// last imported. Returns the names of the rebuilt tables. The
    /// repackaging cost is paid only for changed sources.
    pub fn refresh(&mut self) -> io::Result<Vec<String>> {
        let mut rebuilt = Vec::new();
        let sources = self.sources.clone();
        for src in sources {
            let fp = fingerprint(&src.path)?;
            if fp == src.fingerprint {
                continue;
            }
            let result = import_file(&src.path, &src.options)?;
            if let Some(slot) = self.db.tables.iter_mut().find(|t| t.name == src.table) {
                *slot = result.table;
            } else {
                self.db.add_table(result.table);
            }
            if let Some(s) = self.sources.iter_mut().find(|s| s.table == src.table) {
                s.fingerprint = fp;
            }
            rebuilt.push(src.table);
        }
        Ok(rebuilt)
    }

    /// Whether any linked source has changed on disk.
    pub fn is_stale(&self) -> bool {
        self.sources
            .iter()
            .any(|s| fingerprint(&s.path).map_or(true, |fp| fp != s.fingerprint))
    }

    /// Total physical size of the stored columns.
    pub fn physical_size(&self) -> u64 {
        self.db.tables.iter().map(Table::physical_size).sum()
    }

    /// Total logical (un-encoded) size.
    pub fn logical_size(&self) -> u64 {
        self.db.tables.iter().map(Table::logical_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn import_save_load_roundtrip() {
        let dir = std::env::temp_dir().join("tde_core_extract");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("people.csv");
        std::fs::write(
            &csv,
            "name,age,joined\nada,36,1851-07-02\ngrace,40,1946-07-01\n",
        )
        .unwrap();

        let mut ex = Extract::new();
        let opts = ImportOptions {
            table_name: "people".into(),
            ..Default::default()
        };
        ex.import(&csv, &opts).unwrap();
        assert_eq!(ex.tables().len(), 1);
        assert_eq!(ex.table("people").unwrap().row_count(), 2);

        let file = dir.join("people.tde");
        ex.save(&file).unwrap();
        let loaded = Extract::load(&file).unwrap();
        let t = loaded.table("people").unwrap();
        assert_eq!(t.column("age").unwrap().value(0), tde_types::Value::Int(36));
        assert_eq!(
            t.column("joined").unwrap().value(1),
            tde_types::Value::date(1946, 7, 1)
        );
    }

    #[test]
    fn linked_refresh_rebuilds_on_change() {
        let dir = std::env::temp_dir().join("tde_core_linked");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("live.csv");
        std::fs::write(&csv, "v\n1\n2\n").unwrap();
        let mut ex = Extract::new();
        let opts = ImportOptions {
            table_name: "live".into(),
            ..Default::default()
        };
        ex.import_linked(&csv, &opts).unwrap();
        assert_eq!(ex.table("live").unwrap().row_count(), 2);
        assert!(!ex.is_stale());
        assert!(ex.refresh().unwrap().is_empty());

        // Change the file (force a different mtime/len fingerprint).
        std::fs::write(&csv, "v\n1\n2\n3\n4\n").unwrap();
        assert!(ex.is_stale());
        assert_eq!(ex.refresh().unwrap(), vec!["live".to_owned()]);
        assert_eq!(ex.table("live").unwrap().row_count(), 4);
        assert!(!ex.is_stale());
    }

    #[test]
    fn sizes_reflect_compression() {
        let dir = std::env::temp_dir().join("tde_core_sizes");
        std::fs::create_dir_all(&dir).unwrap();
        let csv = dir.join("seq.csv");
        let mut text = String::from("id\n");
        for i in 0..50_000 {
            text.push_str(&format!("{i}\n"));
        }
        std::fs::write(&csv, text).unwrap();
        let mut ex = Extract::new();
        ex.import(&csv, &ImportOptions::default()).unwrap();
        // A sequential id column is affine: physical ≪ logical.
        assert!(ex.physical_size() * 100 < ex.logical_size());
    }
}

//! Query building and execution over extracts.
//!
//! A thin, fluent wrapper around the logical plan builder, the strategic
//! optimizer and the physical lowering: build, `optimize`, run. Results
//! come back as typed [`Value`] rows for display, or as raw blocks for
//! programmatic use.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tde_exec::aggregate::AggSpec;
use tde_exec::expr::AggFunc;
use tde_exec::merged_scan::MergedSource;
use tde_exec::sort::SortOrder;
use tde_exec::{Block, Expr, Schema};
use tde_obs::{CacheSnapshot, Event, NodeSnapshot, Trace};
use tde_pager::PagedTable;
use tde_plan::strategic::OptimizerOptions;
use tde_plan::{LogicalPlan, PlanBuilder};
use tde_storage::{ColumnTelemetry, Table};
use tde_types::Value;

/// A query under construction.
pub struct Query {
    builder: PlanBuilder,
    opts: OptimizerOptions,
    /// Paged tables the query scans, for buffer-pool telemetry in
    /// [`Query::explain_analyze`].
    paged: Vec<PagedTable>,
}

impl Query {
    /// Start from a table scan.
    pub fn scan(table: &Arc<Table>) -> Query {
        Query {
            builder: PlanBuilder::scan(table),
            opts: OptimizerOptions::default(),
            paged: Vec::new(),
        }
    }

    /// Start from a projection scan.
    pub fn scan_columns(table: &Arc<Table>, columns: &[&str]) -> Query {
        Query {
            builder: PlanBuilder::scan_columns(table, columns),
            opts: OptimizerOptions::default(),
            paged: Vec::new(),
        }
    }

    /// Start from a paged-table scan (loads every column — prefer
    /// [`Query::scan_paged_columns`] with a projection).
    pub fn scan_paged(table: &PagedTable) -> Query {
        Query {
            builder: PlanBuilder::scan_paged(table),
            opts: OptimizerOptions::default(),
            paged: vec![table.clone()],
        }
    }

    /// Start from a paged projection scan: only the named columns'
    /// segments are read from disk, via the buffer pool.
    pub fn scan_paged_columns(table: &PagedTable, columns: &[&str]) -> Query {
        Query {
            builder: PlanBuilder::scan_paged_columns(table, columns),
            opts: OptimizerOptions::default(),
            paged: vec![table.clone()],
        }
    }

    /// Start from a merge-on-read scan: base table ∪ delta −
    /// tombstones, presented as one consistent table. The snapshot
    /// comes from a delta store (crate `tde-delta`,
    /// `DeltaTable::snapshot`).
    pub fn scan_delta(source: &Arc<MergedSource>) -> Query {
        Query {
            builder: PlanBuilder::scan_merged(source),
            opts: OptimizerOptions::default(),
            paged: Vec::new(),
        }
    }

    /// Start from a merge-on-read projection scan.
    pub fn scan_delta_columns(source: &Arc<MergedSource>, columns: &[&str]) -> Query {
        Query {
            builder: PlanBuilder::scan_merged_columns(source, columns),
            opts: OptimizerOptions::default(),
            paged: Vec::new(),
        }
    }

    /// Filter rows.
    pub fn filter(self, predicate: Expr) -> Query {
        Query {
            builder: self.builder.filter(predicate),
            opts: self.opts,
            paged: self.paged,
        }
    }

    /// Compute output columns.
    pub fn project(self, exprs: Vec<(String, Expr)>) -> Query {
        Query {
            builder: self.builder.project(exprs),
            opts: self.opts,
            paged: self.paged,
        }
    }

    /// Group and aggregate.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<(AggFunc, usize, &str)>) -> Query {
        let aggs = aggs
            .into_iter()
            .map(|(f, c, n)| AggSpec::new(f, c, n))
            .collect();
        Query {
            builder: self.builder.aggregate(group_by, aggs),
            opts: self.opts,
            paged: self.paged,
        }
    }

    /// Sort the result.
    pub fn sort(self, keys: Vec<(usize, SortOrder)>) -> Query {
        Query {
            builder: self.builder.sort(keys),
            opts: self.opts,
            paged: self.paged,
        }
    }

    /// Override the optimizer options (the figure harnesses compare
    /// plans with individual rewrites disabled).
    pub fn with_optimizer(mut self, opts: OptimizerOptions) -> Query {
        self.opts = opts;
        self
    }

    /// Request morsel-parallel execution at `degree` workers (1 = serial,
    /// the default). Parallel output is byte-identical to serial; the
    /// planner falls back to the serial pipeline for shapes the morsel
    /// executor cannot run whole or aggregates that do not merge exactly.
    pub fn with_parallelism(mut self, degree: usize) -> Query {
        self.opts.parallelism = degree;
        self
    }

    /// The optimized logical plan.
    pub fn plan(self) -> LogicalPlan {
        tde_plan::optimize(self.builder.build(), self.opts)
    }

    /// The optimized plan rendered as text.
    pub fn explain(self) -> String {
        self.plan().explain()
    }

    /// Execute, returning the output schema and raw blocks.
    ///
    /// Always-on observability: when the process-wide metrics registry
    /// is enabled this records `tde_queries_total`,
    /// `tde_query_rows_total` and the `tde_query_latency_ns` histogram;
    /// when a span sink is installed (see [`tde_obs::span`]) it also
    /// emits one [`tde_obs::span::QuerySpan`] with the plan digest,
    /// phase timings and the registry counter deltas this execution
    /// caused; when timeline tracing is on (see [`tde_obs::timeline`])
    /// the execution is bracketed by query begin/end markers and its
    /// drained timeline lands in the trace ring. With none active the
    /// only cost is three relaxed atomic loads.
    pub fn run(self) -> (Schema, Vec<Block>) {
        self.try_run()
            .unwrap_or_else(|e| panic!("query execution failed: {e}"))
    }

    /// As [`Query::run`], but surfacing I/O and corruption faults —
    /// failed demand loads, segment checksum mismatches — as errors
    /// instead of panicking. The error is the underlying
    /// [`std::io::Error`]; use [`tde_io::checksum_mismatch_details`] to
    /// recognise corruption specifically. Failed executions stay
    /// observable: they bump `tde_queries_failed_total` and emit an
    /// error-tagged span/trace instead of vanishing.
    pub fn try_run(self) -> std::io::Result<(Schema, Vec<Block>)> {
        let Some(obs) = QueryObservation::begin() else {
            let plan = self.plan();
            return tde_plan::physical::try_run(&plan);
        };
        let t0 = Instant::now();
        let plan = self.plan();
        let plan_ns = t0.elapsed().as_nanos() as u64;
        let plan_digest = obs.plan_digest(|| plan.explain());
        let result = tde_plan::physical::try_run(&plan);
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        let phases = [
            ("plan", plan_ns),
            ("execute", elapsed_ns.saturating_sub(plan_ns)),
        ];
        match result {
            Ok((schema, blocks)) => {
                let rows: u64 = blocks.iter().map(|b| b.len as u64).sum();
                obs.finish(&plan_digest, rows, elapsed_ns, None, &phases);
                Ok((schema, blocks))
            }
            Err(e) => {
                obs.finish(&plan_digest, 0, elapsed_ns, Some(e.to_string()), &phases);
                Err(e)
            }
        }
    }

    /// Execute with full instrumentation: every physical operator is
    /// wrapped in a counting adapter, the tactical optimizer's decisions
    /// and the dynamic encoder's re-encodings are recorded, and the
    /// result carries per-table compression telemetry. The query still
    /// runs to completion and its output is available on the report.
    ///
    /// The always-on layers see this entry point like any other: it
    /// bumps the query metrics and emits exactly one
    /// [`tde_obs::span::QuerySpan`] / timeline trace, the same as
    /// [`Query::run`].
    pub fn explain_analyze(self) -> ExplainAnalyze {
        let obs = QueryObservation::begin();
        let paged = self.paged.clone();
        let t0_plan = Instant::now();
        let plan = self.plan();
        let plan_ns = t0_plan.elapsed().as_nanos() as u64;
        let logical = plan.explain();
        let trace = Trace::new();
        let before: Vec<CacheSnapshot> = paged.iter().map(PagedTable::cache_snapshot).collect();
        let (schema, blocks, elapsed) = {
            let _guard = tde_obs::install(&trace);
            let t0 = Instant::now();
            let (schema, blocks) = tde_plan::physical::run_traced(&plan, &trace);
            (schema, blocks, t0.elapsed())
        };
        if let Some(obs) = obs {
            let exec_ns = elapsed.as_nanos() as u64;
            let rows: u64 = blocks.iter().map(|b| b.len as u64).sum();
            let digest = obs.plan_digest(|| logical.clone());
            obs.finish(
                &digest,
                rows,
                plan_ns + exec_ns,
                None,
                &[("plan", plan_ns), ("execute", exec_ns)],
            );
        }
        let caches: Vec<CacheReport> = paged
            .iter()
            .zip(before)
            .map(|(t, before)| {
                let after = t.cache_snapshot();
                CacheReport {
                    table: t.name().to_owned(),
                    delta: after.since(&before),
                    totals: after,
                }
            })
            .collect();
        let tables: Vec<(String, u64, Vec<ColumnTelemetry>)> = plan
            .referenced_tables()
            .iter()
            .map(|t| (t.name.clone(), t.row_count(), t.compression_telemetry()))
            .collect();
        let row_count = blocks.iter().map(|b| b.len as u64).sum();
        ExplainAnalyze {
            logical,
            operator_tree: trace.render_tree(),
            operators: trace.nodes(),
            events: trace.events(),
            tables,
            caches,
            row_count,
            elapsed,
            schema,
            blocks,
        }
    }

    /// Execute, returning typed value rows (convenient, not fast).
    pub fn rows(self) -> Vec<Vec<Value>> {
        self.try_rows()
            .unwrap_or_else(|e| panic!("query execution failed: {e}"))
    }

    /// As [`Query::rows`], surfacing I/O and corruption faults as
    /// errors; see [`Query::try_run`].
    pub fn try_rows(self) -> std::io::Result<Vec<Vec<Value>>> {
        let (schema, blocks) = self.try_run()?;
        let mut rows = Vec::new();
        for b in &blocks {
            for r in 0..b.len {
                rows.push(
                    (0..schema.len())
                        .map(|c| schema.fields[c].value_of(b.columns[c][r]))
                        .collect(),
                );
            }
        }
        Ok(rows)
    }
}

/// One execution's always-on observability, shared by every entry
/// point (`run`/`try_run`/`rows`/`try_rows`/`explain_analyze`) so each
/// emits exactly one span and one timeline trace.
///
/// [`QueryObservation::begin`] checks the three layer gates (metrics
/// registry, span sink, timeline) — `None` means all are off and the
/// caller takes the uninstrumented fast path.
/// [`QueryObservation::finish`] settles everything at once: query
/// metrics (success or `tde_queries_failed_total`), the query span,
/// the drained timeline trace, and the slow-query log when
/// `TDE_SLOW_QUERY_NS` is set and exceeded.
struct QueryObservation {
    query_id: u64,
    token: Option<tde_obs::timeline::QueryToken>,
    before: Option<tde_obs::metrics::MetricsSnapshot>,
    metrics_on: bool,
    span_on: bool,
}

impl QueryObservation {
    fn begin() -> Option<QueryObservation> {
        use tde_obs::{metrics, span, timeline};
        let metrics_on = metrics::enabled();
        let span_on = span::span_sink_installed();
        let trace_on = timeline::enabled();
        if !metrics_on && !span_on && !trace_on {
            return None;
        }
        // Counter deltas are process-wide: concurrent queries fold into
        // each other's spans (exact attribution needs explain_analyze).
        let before = span_on.then(|| metrics::global().snapshot());
        let query_id = span::next_query_id();
        let token = trace_on.then(|| timeline::query_begin(query_id));
        Some(QueryObservation {
            query_id,
            token,
            before,
            metrics_on,
            span_on,
        })
    }

    /// The plan digest, rendered only when a layer will carry it.
    fn plan_digest(&self, explain: impl FnOnce() -> String) -> String {
        if self.span_on || self.token.is_some() {
            format!("{:016x}", tde_obs::span::fnv1a64(&explain()))
        } else {
            String::new()
        }
    }

    fn finish(
        self,
        plan_digest: &str,
        rows: u64,
        elapsed_ns: u64,
        error: Option<String>,
        phases: &[(&'static str, u64)],
    ) {
        use tde_obs::{metrics, span, timeline};
        if self.metrics_on {
            if error.is_none() {
                metrics::queries_total().inc();
                metrics::query_rows_total().add(rows);
                metrics::query_latency_ns().observe(elapsed_ns);
            } else {
                metrics::queries_failed_total().inc();
            }
        }
        let trace = self.token.map(|token| {
            timeline::query_end(token, plan_digest, rows, elapsed_ns, error.clone(), phases)
        });
        if self.span_on {
            // Snapshot after the query counters above so a span's delta
            // set includes them.
            let counters = self
                .before
                .map(|b| metrics::global().snapshot().counter_deltas(&b))
                .unwrap_or_default();
            span::emit_span(|| span::QuerySpan {
                query_id: self.query_id,
                plan_digest: plan_digest.to_owned(),
                rows_out: rows,
                elapsed_ns,
                phases: phases.to_vec(),
                counters,
                error,
            });
        }
        if let Some(threshold_ns) = timeline::slow_threshold_ns() {
            if elapsed_ns >= threshold_ns {
                if self.metrics_on {
                    metrics::slow_queries_total().inc();
                }
                let top_ops = trace
                    .as_ref()
                    .map(|t| t.top_operators(3))
                    .unwrap_or_default();
                span::emit_slow(|| span::SlowQueryRecord {
                    query_id: self.query_id,
                    plan_digest: plan_digest.to_owned(),
                    rows_out: rows,
                    elapsed_ns,
                    threshold_ns,
                    phases: phases.to_vec(),
                    top_ops,
                });
            }
        }
    }
}

/// Buffer-pool telemetry for one paged table scanned by a query:
/// what this execution did to the cache (`delta`) and where the pool
/// stands now (`totals`).
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// The paged table's name.
    pub table: String,
    /// Hits/misses/evictions attributable to this execution.
    pub delta: CacheSnapshot,
    /// Cumulative pool state after the execution.
    pub totals: CacheSnapshot,
}

/// The result of [`Query::explain_analyze`]: the executed query's
/// output plus everything the recorder captured while it ran.
#[derive(Debug)]
pub struct ExplainAnalyze {
    /// The optimized logical plan, rendered.
    pub logical: String,
    /// The physical operator tree annotated with blocks/rows/elapsed.
    pub operator_tree: String,
    /// Raw per-operator counters (arena order; parents precede children).
    pub operators: Vec<NodeSnapshot>,
    /// Tactical decisions, re-encodings and conversions, in order.
    pub events: Vec<Event>,
    /// Per-table compression telemetry: (table, rows, columns).
    pub tables: Vec<(String, u64, Vec<ColumnTelemetry>)>,
    /// Buffer-pool telemetry for each paged table the query scanned.
    pub caches: Vec<CacheReport>,
    /// Rows the query produced.
    pub row_count: u64,
    /// Wall time for the whole execution (lowering + drain).
    pub elapsed: Duration,
    /// Output schema.
    pub schema: Schema,
    /// Output blocks (the query result).
    pub blocks: Vec<Block>,
}

impl ExplainAnalyze {
    /// The report as one JSON document (hand-rolled; the engine carries
    /// no serialization dependency). Written by the bench harnesses into
    /// `bench_results/`.
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self
            .operators
            .iter()
            .map(|n| {
                format!(
                    "{{\"label\":\"{}\",\"parent\":{},\"blocks\":{},\"rows\":{},\
                     \"elapsed_ns\":{}}}",
                    tde_obs::json_escape(&n.label),
                    n.parent.map_or("null".to_string(), |p| p.to_string()),
                    n.blocks,
                    n.rows,
                    n.elapsed.as_nanos()
                )
            })
            .collect();
        let events: Vec<String> = self.events.iter().map(Event::to_json).collect();
        let tables: Vec<String> = self
            .tables
            .iter()
            .map(|(name, rows, cols)| {
                let cols: Vec<String> = cols.iter().map(ColumnTelemetry::to_json).collect();
                format!(
                    "{{\"table\":\"{}\",\"rows\":{},\"columns\":[{}]}}",
                    tde_obs::json_escape(name),
                    rows,
                    cols.join(",")
                )
            })
            .collect();
        let caches: Vec<String> = self
            .caches
            .iter()
            .map(|c| {
                format!(
                    "{{\"table\":\"{}\",\"delta\":{},\"totals\":{}}}",
                    tde_obs::json_escape(&c.table),
                    c.delta.to_json(),
                    c.totals.to_json()
                )
            })
            .collect();
        format!(
            "{{\"rows\":{},\"elapsed_ns\":{},\"operators\":[{}],\"events\":[{}],\
             \"tables\":[{}],\"caches\":[{}]}}",
            self.row_count,
            self.elapsed.as_nanos(),
            ops.join(","),
            events.join(","),
            tables.join(","),
            caches.join(",")
        )
    }
}

impl ExplainAnalyze {
    /// The kernel telemetry events the scans emitted: one
    /// [`Event::KernelScan`] per scan with a pushed predicate, carrying
    /// the kernel kind and the rows it skipped without decoding.
    pub fn kernel_scans(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::KernelScan { .. }))
            .collect()
    }
}

impl std::fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "== physical plan ==")?;
        f.write_str(&self.operator_tree)?;
        writeln!(f, "\n== decisions & encoding events ==")?;
        if self.events.is_empty() {
            writeln!(f, "  (none recorded)")?;
        }
        for e in &self.events {
            writeln!(f, "  - {e}")?;
        }
        writeln!(f, "\n== compression telemetry ==")?;
        for (name, rows, cols) in &self.tables {
            let physical: u64 = cols.iter().map(|c| c.physical_bytes).sum();
            let logical: u64 = cols.iter().map(|c| c.logical_bytes).sum();
            writeln!(
                f,
                "table {name} ({rows} rows, {physical} physical / {logical} logical bytes)"
            )?;
            for c in cols {
                writeln!(f, "  {c}")?;
            }
        }
        if !self.caches.is_empty() {
            writeln!(f, "\n== buffer pool ==")?;
            for c in &self.caches {
                writeln!(f, "table {}: this query {}", c.table, c.delta)?;
                writeln!(f, "  pool totals {}", c.totals)?;
            }
        }
        writeln!(f, "\n== result ==")?;
        writeln!(f, "{} row(s) in {:.3?}", self.row_count, self.elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_exec::expr::CmpOp;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::DataType;

    fn sales() -> Arc<Table> {
        let mut region = ColumnBuilder::new("region", DataType::Str, EncodingPolicy::default());
        let mut amount = ColumnBuilder::new("amount", DataType::Integer, EncodingPolicy::default());
        for i in 0..1000i64 {
            region.append_str(Some(["east", "west", "north"][i as usize % 3]));
            amount.append_i64(i);
        }
        Arc::new(Table::new(
            "sales",
            vec![region.finish().column, amount.finish().column],
        ))
    }

    #[test]
    fn end_to_end_group_by() {
        let t = sales();
        let mut rows = Query::scan(&t)
            .aggregate(
                vec![0],
                vec![(AggFunc::Count, 1, "n"), (AggFunc::Max, 1, "mx")],
            )
            .rows();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("east".into()));
        assert_eq!(rows[0][1], Value::Int(334)); // 0,3,…,999
        assert_eq!(rows[0][2], Value::Int(999));
    }

    #[test]
    fn filter_and_rows() {
        let t = sales();
        let rows = Query::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(997)))
            .rows();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn explain_renders() {
        let t = sales();
        let text = Query::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(5)))
            .explain();
        assert!(text.contains("Scan sales"));
    }

    #[test]
    fn parallel_query_is_byte_identical_and_labeled() {
        let mut region = ColumnBuilder::new("region", DataType::Str, EncodingPolicy::default());
        let mut amount = ColumnBuilder::new("amount", DataType::Integer, EncodingPolicy::default());
        for i in 0..30_000i64 {
            region.append_str(Some(["east", "west", "north"][i as usize % 3]));
            amount.append_i64(i % 1013);
        }
        let t = Arc::new(Table::new(
            "sales",
            vec![region.finish().column, amount.finish().column],
        ));
        let query = |t: &Arc<Table>| {
            Query::scan(t)
                .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(100)))
                .aggregate(
                    vec![0],
                    vec![(AggFunc::Count, 1, "n"), (AggFunc::Max, 1, "mx")],
                )
        };
        let (ss, sb) = query(&t).run();
        let report = query(&t).with_parallelism(4).explain_analyze();
        assert!(
            report.operator_tree.contains("[parallel=4]"),
            "{}",
            report.operator_tree
        );
        assert!(
            report.logical.contains("Morsel [parallel=4]"),
            "{}",
            report.logical
        );
        assert_eq!(ss.fields.len(), report.schema.fields.len());
        assert_eq!(sb.len(), report.blocks.len());
        for (a, b) in sb.iter().zip(&report.blocks) {
            assert_eq!(a.len, b.len);
            assert_eq!(a.columns, b.columns);
        }
        // The lowering recorded its tactical call.
        assert!(
            report.events.iter().any(|e| matches!(
                e,
                tde_obs::Event::Decision {
                    point: "parallelism",
                    ..
                }
            )),
            "{:?}",
            report.events
        );
    }

    #[test]
    fn paged_query_reports_cache_telemetry() {
        let t = sales();
        let mut db = tde_storage::Database::new();
        db.add_table((*t).clone());
        let dir = std::env::temp_dir().join("tde_core_paged_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sales.tde2");
        tde_pager::save_v2(&db, &path).unwrap();
        let paged = tde_pager::PagedDatabase::open(&path).unwrap();
        let pt = paged.table("sales").unwrap();

        // Results through the paged path match the eager path.
        let mut eager = Query::scan(&t)
            .aggregate(vec![0], vec![(AggFunc::Count, 1, "n")])
            .rows();
        let report = Query::scan_paged(&pt)
            .aggregate(vec![0], vec![(AggFunc::Count, 1, "n")])
            .explain_analyze();
        let mut lazy: Vec<Vec<Value>> = {
            let mut rows = Vec::new();
            for b in &report.blocks {
                for r in 0..b.len {
                    rows.push(
                        (0..report.schema.len())
                            .map(|c| report.schema.fields[c].value_of(b.columns[c][r]))
                            .collect(),
                    );
                }
            }
            rows
        };
        eager.sort_by_key(|r| r[0].to_string());
        lazy.sort_by_key(|r: &Vec<Value>| r[0].to_string());
        assert_eq!(eager, lazy);

        // The report carries buffer-pool telemetry for the scan: a cold
        // pool missed, and the JSON/Display both surface a caches section.
        assert_eq!(report.caches.len(), 1);
        assert_eq!(report.caches[0].table, "sales");
        assert!(report.caches[0].delta.misses > 0);
        assert!(report.to_json().contains("\"caches\""));
        assert!(report.to_string().contains("== buffer pool =="));
        assert!(report.operator_tree.contains("PagedScan"));

        // A repeat run is all hits.
        let again = Query::scan_paged(&pt)
            .aggregate(vec![0], vec![(AggFunc::Count, 1, "n")])
            .explain_analyze();
        assert_eq!(again.caches[0].delta.misses, 0);
        assert!(again.caches[0].delta.hits > 0);
        std::fs::remove_file(&path).ok();
    }
}

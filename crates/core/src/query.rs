//! Query building and execution over extracts.
//!
//! A thin, fluent wrapper around the logical plan builder, the strategic
//! optimizer and the physical lowering: build, `optimize`, run. Results
//! come back as typed [`Value`] rows for display, or as raw blocks for
//! programmatic use.

use std::sync::Arc;
use tde_exec::aggregate::AggSpec;
use tde_exec::expr::AggFunc;
use tde_exec::sort::SortOrder;
use tde_exec::{Block, Expr, Schema};
use tde_plan::strategic::OptimizerOptions;
use tde_plan::{LogicalPlan, PlanBuilder};
use tde_storage::Table;
use tde_types::Value;

/// A query under construction.
pub struct Query {
    builder: PlanBuilder,
    opts: OptimizerOptions,
}

impl Query {
    /// Start from a table scan.
    pub fn scan(table: &Arc<Table>) -> Query {
        Query { builder: PlanBuilder::scan(table), opts: OptimizerOptions::default() }
    }

    /// Start from a projection scan.
    pub fn scan_columns(table: &Arc<Table>, columns: &[&str]) -> Query {
        Query {
            builder: PlanBuilder::scan_columns(table, columns),
            opts: OptimizerOptions::default(),
        }
    }

    /// Filter rows.
    pub fn filter(self, predicate: Expr) -> Query {
        Query { builder: self.builder.filter(predicate), opts: self.opts }
    }

    /// Compute output columns.
    pub fn project(self, exprs: Vec<(String, Expr)>) -> Query {
        Query { builder: self.builder.project(exprs), opts: self.opts }
    }

    /// Group and aggregate.
    pub fn aggregate(self, group_by: Vec<usize>, aggs: Vec<(AggFunc, usize, &str)>) -> Query {
        let aggs = aggs.into_iter().map(|(f, c, n)| AggSpec::new(f, c, n)).collect();
        Query { builder: self.builder.aggregate(group_by, aggs), opts: self.opts }
    }

    /// Sort the result.
    pub fn sort(self, keys: Vec<(usize, SortOrder)>) -> Query {
        Query { builder: self.builder.sort(keys), opts: self.opts }
    }

    /// Override the optimizer options (the figure harnesses compare
    /// plans with individual rewrites disabled).
    pub fn with_optimizer(mut self, opts: OptimizerOptions) -> Query {
        self.opts = opts;
        self
    }

    /// The optimized logical plan.
    pub fn plan(self) -> LogicalPlan {
        tde_plan::optimize(self.builder.build(), self.opts)
    }

    /// The optimized plan rendered as text.
    pub fn explain(self) -> String {
        self.plan().explain()
    }

    /// Execute, returning the output schema and raw blocks.
    pub fn run(self) -> (Schema, Vec<Block>) {
        let plan = self.plan();
        tde_plan::physical::run(&plan)
    }

    /// Execute, returning typed value rows (convenient, not fast).
    pub fn rows(self) -> Vec<Vec<Value>> {
        let (schema, blocks) = self.run();
        let mut rows = Vec::new();
        for b in &blocks {
            for r in 0..b.len {
                rows.push(
                    (0..schema.len())
                        .map(|c| schema.fields[c].value_of(b.columns[c][r]))
                        .collect(),
                );
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_exec::expr::CmpOp;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::DataType;

    fn sales() -> Arc<Table> {
        let mut region = ColumnBuilder::new("region", DataType::Str, EncodingPolicy::default());
        let mut amount = ColumnBuilder::new("amount", DataType::Integer, EncodingPolicy::default());
        for i in 0..1000i64 {
            region.append_str(Some(["east", "west", "north"][i as usize % 3]));
            amount.append_i64(i);
        }
        Arc::new(Table::new(
            "sales",
            vec![region.finish().column, amount.finish().column],
        ))
    }

    #[test]
    fn end_to_end_group_by() {
        let t = sales();
        let mut rows = Query::scan(&t)
            .aggregate(vec![0], vec![(AggFunc::Count, 1, "n"), (AggFunc::Max, 1, "mx")])
            .rows();
        rows.sort_by_key(|r| r[0].to_string());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Str("east".into()));
        assert_eq!(rows[0][1], Value::Int(334)); // 0,3,…,999
        assert_eq!(rows[0][2], Value::Int(999));
    }

    #[test]
    fn filter_and_rows() {
        let t = sales();
        let rows = Query::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(997)))
            .rows();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn explain_renders() {
        let t = sales();
        let text = Query::scan(&t)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(5)))
            .explain();
        assert!(text.contains("Scan sales"));
    }
}

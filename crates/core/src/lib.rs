//! High-level facade over the TDE reproduction: extracts, import, and
//! query execution.
//!
//! The paper's system is a read-only column store holding *extracts* of a
//! data set (paper §2.2): single-file databases created by importing flat
//! files, optimized at load time through dynamic encoding and the §3.4
//! manipulations, and queried with plans that operate directly on the
//! compressed data. [`Extract`] wraps that lifecycle; [`Query`] wraps plan
//! building, strategic optimization and execution.

pub mod design;
pub mod extract;
pub mod query;

pub use design::optimize_physical_design;
pub use extract::Extract;
pub use query::{CacheReport, ExplainAnalyze, Query};

// Re-export the crates behind the facade so downstream users need only
// one dependency.
pub use tde_datagen as datagen;
pub use tde_encodings as encodings;
pub use tde_exec as exec;
pub use tde_io as io;
pub use tde_obs as obs;
pub use tde_pager as pager;
pub use tde_plan as plan;
pub use tde_storage as storage;
pub use tde_textscan as textscan;
pub use tde_types as types;

//! Physical design optimization (paper §5.2, §3.4.3).
//!
//! Import leaves columns encoded but not dictionary-*compressed*. Two
//! further design steps the paper discusses can pay off when the workload
//! suggests them:
//!
//! * converting dictionary-encoded scalar dimensions (typically dates)
//!   into dictionary-compressed columns, enabling invisible joins so
//!   expensive calculations run once per domain value;
//! * converting frame-of-reference columns through the envelope
//!   dictionary (§3.4.3).
//!
//! This is the AlterColumn-style global optimization pass: cheap, because
//! the conversions reuse the encoded headers.

use tde_encodings::Algorithm;
use tde_storage::{convert, Compression, Table};
use tde_types::DataType;

/// What the pass did to each column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignChange {
    /// Dictionary encoding promoted to dictionary compression.
    DictCompressed(String),
    /// Frame-of-reference promoted to an envelope dictionary.
    EnvelopeCompressed(String),
    /// RLE column promoted through run decomposition.
    RleCompressed(String),
    /// Left alone.
    Unchanged(String),
}

/// Knobs for the design pass.
#[derive(Debug, Clone, Copy)]
pub struct DesignOptions {
    /// Promote dictionary-encoded scalar dimensions (dates by default).
    pub compress_dates: bool,
    /// Promote any dictionary-encoded integral scalar, not just dates.
    pub compress_all_scalars: bool,
    /// Promote narrow frame-of-reference columns through the envelope.
    pub envelope_max_bits: u8,
    /// Promote RLE scalar columns via run decomposition.
    pub compress_rle: bool,
    /// Fall back to the heavyweight O(rows) re-encode when an eligible
    /// column's small domain is hidden behind another encoding (the
    /// AlterColumn path). The cheap header routes are always preferred.
    pub reencode_small_domains: bool,
}

impl Default for DesignOptions {
    fn default() -> DesignOptions {
        DesignOptions {
            compress_dates: true,
            compress_all_scalars: false,
            envelope_max_bits: 0, // off by default: dictionaries may hold absent values
            compress_rle: false,
            reencode_small_domains: true,
        }
    }
}

/// Apply the design pass to every column of `table`.
pub fn optimize_physical_design(table: &mut Table, opts: DesignOptions) -> Vec<DesignChange> {
    let mut changes = Vec::new();
    for col in &mut table.columns {
        if !matches!(col.compression, Compression::None) || col.dtype == DataType::Real {
            changes.push(DesignChange::Unchanged(col.name.clone()));
            continue;
        }
        let eligible_dtype = match col.dtype {
            DataType::Date | DataType::Timestamp => opts.compress_dates,
            DataType::Integer | DataType::Bool => opts.compress_all_scalars,
            _ => false,
        };
        match col.data.algorithm() {
            Algorithm::Dictionary if eligible_dtype => {
                convert::dict_encoding_to_compression(col);
                changes.push(DesignChange::DictCompressed(col.name.clone()));
            }
            Algorithm::FrameOfReference
                if eligible_dtype
                    && col.data.header().bits <= opts.envelope_max_bits
                    && opts.envelope_max_bits > 0 =>
            {
                convert::for_encoding_to_compression(col);
                changes.push(DesignChange::EnvelopeCompressed(col.name.clone()));
            }
            Algorithm::RunLength if eligible_dtype && opts.compress_rle => {
                convert::rle_to_dict_compression(col);
                changes.push(DesignChange::RleCompressed(col.name.clone()));
            }
            _ if eligible_dtype
                && opts.reencode_small_domains
                && col.metadata.cardinality.is_some_and(|c| c <= 1 << 15) =>
            {
                if convert::reencode_as_dictionary(col) {
                    changes.push(DesignChange::DictCompressed(col.name.clone()));
                } else {
                    changes.push(DesignChange::Unchanged(col.name.clone()));
                }
            }
            _ => changes.push(DesignChange::Unchanged(col.name.clone())),
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use tde_storage::{ColumnBuilder, EncodingPolicy};
    use tde_types::Value;

    #[test]
    fn dates_get_dictionary_compressed() {
        let mut d = ColumnBuilder::new("d", DataType::Date, EncodingPolicy::default());
        let mut x = ColumnBuilder::new("x", DataType::Integer, EncodingPolicy::default());
        for i in 0..20_000i64 {
            // Wide-ranging repeated dates (dictionary-friendly, FoR-hostile).
            d.append_i64(((i * 7919) % 60) * 500);
            x.append_i64(i);
        }
        let mut t = Table::new("t", vec![d.finish().column, x.finish().column]);
        assert_eq!(t.columns[0].data.algorithm(), Algorithm::Dictionary);
        let before = t.columns[0].value(17);
        let changes = optimize_physical_design(&mut t, DesignOptions::default());
        assert_eq!(changes[0], DesignChange::DictCompressed("d".into()));
        assert_eq!(changes[1], DesignChange::Unchanged("x".into()));
        assert!(matches!(
            t.columns[0].compression,
            Compression::Array { .. }
        ));
        assert_eq!(t.columns[0].value(17), before);
    }

    #[test]
    fn strings_and_reals_untouched() {
        let mut s = ColumnBuilder::new("s", DataType::Str, EncodingPolicy::default());
        let mut r = ColumnBuilder::new("r", DataType::Real, EncodingPolicy::default());
        for i in 0..100 {
            s.append_str(Some(["a", "b"][i % 2]));
            r.append_f64(i as f64);
        }
        let mut t = Table::new("t", vec![s.finish().column, r.finish().column]);
        let changes = optimize_physical_design(
            &mut t,
            DesignOptions {
                compress_all_scalars: true,
                ..Default::default()
            },
        );
        assert!(changes
            .iter()
            .all(|c| matches!(c, DesignChange::Unchanged(_))));
        assert_eq!(t.columns[0].value(1), Value::Str("b".into()));
    }

    #[test]
    fn rle_promotion() {
        let mut data = Vec::new();
        for v in 0..5i64 {
            data.extend(std::iter::repeat_n(v * 1000, 5000));
        }
        let mut d = ColumnBuilder::new("d", DataType::Integer, EncodingPolicy::default());
        d.append_raw(&data);
        let mut t = Table::new("t", vec![d.finish().column]);
        assert_eq!(t.columns[0].data.algorithm(), Algorithm::RunLength);
        let changes = optimize_physical_design(
            &mut t,
            DesignOptions {
                compress_all_scalars: true,
                compress_rle: true,
                ..Default::default()
            },
        );
        assert_eq!(changes[0], DesignChange::RleCompressed("d".into()));
        // Token stream stays run-length encoded (§3.4.3 last paragraph).
        assert_eq!(t.columns[0].data.algorithm(), Algorithm::RunLength);
        assert_eq!(t.columns[0].value(0), Value::Int(0));
        assert_eq!(t.columns[0].value(24_999), Value::Int(4000));
    }
}

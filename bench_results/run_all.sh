#!/bin/bash
export TDE_SF=0.1 TDE_SF_LARGE=0.2 TDE_FLIGHTS_ROWS=1000000 TDE_RLE_SMALL=1000000 TDE_RLE_LARGE=16000000 TDE_REPS=3
cd /root/repo
for b in fig4_parsing fig5_storage fig6_heap_sorting fig7_metadata fig8_string_width fig9_integer_width fig10_filtering exchange_overhead dynamic_stability locale_parsing ablation_block_size ablation_rle_rewrite parallel_rollup morsel_pipeline; do
  echo "=== running $b ==="
  timeout 1800 cargo bench -p tde-bench --bench $b > bench_results/$b.txt 2>&1
  echo "=== $b done (exit $?) ==="
done
echo ALL_FIGURES_DONE

//! The paper's §4.1.2 string scenario, end to end: a log of URL requests,
//! a computed file-extension column pushed onto the dictionary side of an
//! expansion join, and an aggregation that benefits from the narrow sorted
//! tokens FlowTable produced for the computed domain.
//!
//! "Consider the situation of a string column containing URL requests and
//! a calculation to extract the file extension of the request. … If the
//! query then aggregates on this computation the aggregation operator will
//! be able to use a faster hashing algorithm thanks to the narrower
//! representation."
//!
//! ```sh
//! cargo run --release --example url_analytics [rows]
//! ```

use std::sync::Arc;
use tde::exec::aggregate::{AggSpec, HashAggregate};
use tde::exec::expr::{AggFunc, Expr, Func};
use tde::exec::flow_table::{flow_table, FlowTableOptions};
use tde::exec::project::Project;
use tde::exec::scan::TableScan;
use tde::exec::{drain, Operator};
use tde::storage::{ColumnBuilder, Compression, EncodingPolicy, Table};
use tde::types::DataType;

fn main() {
    let rows: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500_000);
    println!("building a {rows}-row request log ...");
    let exts = [
        "html", "css", "js", "png", "jpg", "svg", "ico", "woff2", "json", "map",
    ];
    let mut url = ColumnBuilder::new("url", DataType::Str, EncodingPolicy::default());
    let mut bytes = ColumnBuilder::new("bytes", DataType::Integer, EncodingPolicy::default());
    for i in 0..rows {
        url.append_str(Some(&format!(
            "/assets/v{}/page{}/resource{}.{}",
            i % 3,
            i % 97,
            i % 1009,
            exts[i % exts.len()]
        )));
        bytes.append_i64(((i * 7919) % 50_000) as i64);
    }
    let log = Arc::new(Table::new(
        "requests",
        vec![url.finish().column, bytes.finish().column],
    ));
    let url_col = &log.columns[0];
    println!(
        "  url column: {} distinct strings, heap {} KB, token width {}",
        url_col
            .metadata
            .cardinality
            .map_or("many".into(), |c| c.to_string()),
        url_col.heap().map_or(0, |h| h.byte_size() / 1024),
        url_col.metadata.width,
    );

    // Compute the extension per row and materialize through FlowTable:
    // the computed column starts with wide tokens in an unsorted compute
    // heap; FlowTable sorts and narrows it (§4.1.2).
    let project = Project::new(
        Box::new(TableScan::project(log.clone(), &["url", "bytes"], false)),
        vec![
            (
                "ext".into(),
                Expr::Func(Func::FileExtension, Box::new(Expr::col(0))),
            ),
            ("bytes".into(), Expr::col(1)),
        ],
    );
    let built = flow_table(Box::new(project), "by_ext", FlowTableOptions::default());
    let ext_col = &built.table.columns[0];
    match &ext_col.compression {
        Compression::Heap { heap, sorted } => println!(
            "\ncomputed ext column after FlowTable: {} distinct, sorted={}, token width {}",
            heap.len(),
            sorted,
            ext_col.metadata.width,
        ),
        _ => unreachable!(),
    }

    // Aggregate: requests and bytes per extension. The narrow token keys
    // let the tactical optimizer choose direct hashing.
    let scan = Box::new(TableScan::new(built.table.clone()));
    let agg = HashAggregate::new(
        scan,
        vec![0],
        vec![
            AggSpec::new(AggFunc::Count, 1, "requests"),
            AggSpec::new(AggFunc::Sum, 1, "bytes"),
        ],
    );
    println!("aggregation hash strategy: {}\n", agg.strategy.name());
    let schema = agg.schema().clone();
    let blocks = drain(Box::new(agg));
    println!("{:<8} {:>9} {:>13}", "ext", "requests", "bytes");
    let mut rows_out: Vec<(String, i64, i64)> = Vec::new();
    for b in &blocks {
        for r in 0..b.len {
            rows_out.push((
                schema.fields[0].value_of(b.columns[0][r]).to_string(),
                b.columns[1][r],
                b.columns[2][r],
            ));
        }
    }
    rows_out.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (ext, n, total) in rows_out {
        println!("{ext:<8} {n:>9} {total:>13}");
    }
}

//! Decompression joins over run-length data: the paper's §6.6 query
//!
//! ```sql
//! SELECT Index, MAX(Other) FROM table
//! WHERE Index > (100 - selectivity) GROUP BY Index
//! ```
//!
//! executed under the three plans of Fig 10 — the row-at-a-time control,
//! the IndexTable plan with hash aggregation, and the value-sorted
//! IndexTable plan with ordered aggregation — printing timings so the
//! crossover behaviour is visible interactively.
//!
//! ```sh
//! cargo run --release --example rle_index_scan [rows] [selectivity]
//! ```

use std::sync::Arc;
use std::time::Instant;
use tde::datagen::rle::RleTable;
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::plan::strategic::OptimizerOptions;
use tde::storage::{Column, ColumnBuilder, EncodingPolicy, Table};
use tde::types::DataType;
use tde::Query;

/// Build the §5.3 table: primary and secondary RLE columns.
fn build(rows: u64) -> Arc<Table> {
    let spec = RleTable::generate(rows, 99);
    let make = |runs: Vec<(i64, u64)>, name: &str| -> Column {
        let mut b = ColumnBuilder::new(name, DataType::Integer, EncodingPolicy::default());
        for (v, c) in runs {
            for _ in 0..c {
                b.append_i64(v);
            }
        }
        b.finish().column
    };
    let primary = make(spec.primary_runs(), "primary");
    let secondary = make(spec.secondary_runs(), "secondary");
    println!(
        "  primary: {} runs, secondary: {} runs (avg {:.0} rows/run)",
        primary.data.rle_runs().map_or(0, |r| r.len()),
        secondary.data.rle_runs().map_or(0, |r| r.len()),
        spec.avg_secondary_run(),
    );
    Arc::new(Table::new("rle", vec![primary, secondary]))
}

fn query(
    table: &Arc<Table>,
    key: &str,
    other: &str,
    selectivity: i64,
    opts: OptimizerOptions,
) -> (usize, f64) {
    let q = Query::scan_columns(table, &[key, other])
        .filter(Expr::cmp(
            CmpOp::Gt,
            Expr::col(0),
            Expr::int(100 - selectivity),
        ))
        .aggregate(vec![0], vec![(AggFunc::Max, 1, "mx")])
        .with_optimizer(opts);
    let start = Instant::now();
    let n = q.rows().len();
    (n, start.elapsed().as_secs_f64())
}

fn main() {
    let rows: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let sel: i64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(30);
    println!("building {rows}-row run-length table ...");
    let table = build(rows);

    let control = OptimizerOptions {
        invisible_joins: false,
        index_tables: false,
        ordered_retrieval: false,
        kernel_pushdown: false,
        parallelism: 1,
    };
    let indexed = OptimizerOptions {
        ordered_retrieval: false,
        kernel_pushdown: false,
        ..Default::default()
    };
    let ordered = OptimizerOptions::default();

    for key in ["primary", "secondary"] {
        let other = if key == "primary" {
            "secondary"
        } else {
            "primary"
        };
        println!(
            "\nSELECT {key}, MAX({other}) WHERE {key} > {} GROUP BY {key}",
            100 - sel
        );
        let (n1, t1) = query(&table, key, other, sel, control);
        println!("  plan 1  Scan→Filter→Aggregate              {t1:>8.4}s  ({n1} groups)");
        let (n2, t2) = query(&table, key, other, sel, indexed);
        println!("  plan 2  Index→Filter→IndexedScan→HashAgg   {t2:>8.4}s  ({n2} groups)");
        let (n3, t3) = query(&table, key, other, sel, ordered);
        println!("  plan 3  Index→Filter→Sort→IndexedScan→Ord  {t3:>8.4}s  ({n3} groups)");
        assert_eq!(n1, n2);
        assert_eq!(n1, n3);
        println!("  speedup: plan2 {:.2}x, plan3 {:.2}x", t1 / t2, t1 / t3);
    }
    println!("\n(With short secondary runs — e.g. 1M rows — plan 3 degrades on the");
    println!(" secondary key; at larger row counts its runs exceed the block size");
    println!(" and ordered retrieval wins, matching Fig 10.)");
}

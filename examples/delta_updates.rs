//! Mutations on a read-optimized extract: buffer appends and deletes in
//! a delta store, query the merged view, then compact back into a clean
//! compressed table — and do the same against a persisted v2 file.
//!
//! Run with `cargo run --example delta_updates`.

use std::sync::Arc;
use tde::delta::{DeltaExtract, DeltaTable, ScanSource};
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::pager::save_v2;
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::{DataType, Value};
use tde::Query;

/// A small orders table: FoR-style id, low-cardinality dictionary city,
/// and a nullable quantity.
fn orders(rows: i64) -> Arc<Table> {
    let mut id = ColumnBuilder::new("id", DataType::Integer, EncodingPolicy::default());
    let mut qty = ColumnBuilder::new("qty", DataType::Integer, EncodingPolicy::default());
    let mut city = ColumnBuilder::new("city", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        id.append_i64(i);
        qty.append_i64(i % 9 + 1);
        city.append_str(Some(["lyon", "oslo", "kyiv", "lima"][i as usize % 4]));
    }
    Arc::new(Table::new(
        "orders",
        vec![
            id.finish().column,
            qty.finish().column,
            city.finish().column,
        ],
    ))
}

fn rollup(q: Query) -> Vec<Vec<Value>> {
    let mut rows = q
        .aggregate(vec![2], vec![(AggFunc::Sum, 1, "total")])
        .rows();
    rows.sort_by_key(|r| format!("{r:?}"));
    rows
}

fn main() {
    // ------------------------------------------------------------------
    // In memory: wrap a compressed table in a delta store and mutate it.
    // ------------------------------------------------------------------
    let mut dt = DeltaTable::from_eager(orders(10_000));
    println!(
        "base: {} rows, delta empty, clean = {}",
        dt.base_rows(),
        dt.is_clean()
    );

    // Appends go to an uncompressed row buffer. Fresh strings ("quito")
    // extend a copy-on-write heap overlay; NULLs are allowed anywhere.
    dt.append_rows(&[
        vec![
            Value::Int(10_000),
            Value::Int(40),
            Value::Str("quito".into()),
        ],
        vec![Value::Int(10_001), Value::Null, Value::Str("lyon".into())],
        vec![Value::Int(10_002), Value::Int(7), Value::Null],
    ])
    .unwrap();
    // Deletes are tombstones over the merged id space (base ids first,
    // then append slots). This kills one base row and one appended row.
    let killed = dt.delete(&[17, 10_001]).unwrap();
    println!(
        "after mutations: +{} appended, -{killed} deleted, {} bytes buffered",
        dt.delta_rows(),
        dt.buffered_bytes()
    );

    // Queries run merge-on-read: the compressed base scans through the
    // pushed-predicate kernels as usual, the delta leg re-encodes its
    // rows on the fly, and tombstones filter both legs.
    let src = dt.snapshot().unwrap();
    println!("\nsum(qty) by city over the merged view:");
    for row in rollup(Query::scan_delta(&src)) {
        println!("  {row:?}");
    }
    let filtered = Query::scan_delta(&src)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(8)))
        .rows();
    println!("rows with qty >= 8: {}", filtered.len());

    // Compaction drains the buffer through the dynamic encoder and
    // rebuilds a clean compressed table; answers must not change.
    let before = rollup(Query::scan_delta(&src));
    dt.compact().unwrap();
    assert!(dt.is_clean());
    let after = rollup(Query::scan_delta(&dt.snapshot().unwrap()));
    assert_eq!(before, after, "compaction changed query results");
    println!(
        "\ncompacted: {} rows in the new base, clean = {}",
        dt.base_rows(),
        dt.is_clean()
    );

    // ------------------------------------------------------------------
    // On disk: the same flow against a paged v2 extract. The delta and
    // tombstones persist as auxiliary footer sections, so a half-synced
    // buffer survives process restarts.
    // ------------------------------------------------------------------
    let dir = std::env::temp_dir().join("tde_example_delta");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("orders.tde2");
    let mut db = Database::new();
    db.add_table((*orders(10_000)).clone());
    save_v2(&db, &path).unwrap();

    let mut ex = DeltaExtract::open(&path).unwrap();
    ex.delta_mut("orders")
        .unwrap()
        .append_rows(&[vec![
            Value::Int(10_000),
            Value::Int(99),
            Value::Str("sofia".into()),
        ]])
        .unwrap();
    ex.save().unwrap(); // atomic: tmp file + rename
    drop(ex);

    let mut ex = DeltaExtract::open(&path).unwrap();
    match ex.source("orders").unwrap() {
        ScanSource::Merged(src) => println!(
            "\nreopened with a live delta: {} merged rows",
            Query::scan_delta(&src).rows().len()
        ),
        ScanSource::Clean(_) => unreachable!("saved delta was lost"),
    }

    // Compacting the extract rewrites the file in place (again via a
    // temp-file rename) and drops the aux sections.
    ex.compact("orders").unwrap();
    assert!(matches!(ex.source("orders").unwrap(), ScanSource::Clean(_)));
    println!("compacted on disk: delta sections gone, extract is clean");

    std::fs::remove_dir_all(&dir).ok();
}

//! EXPLAIN ANALYZE: run a filter + invisible-join + aggregate query with
//! full instrumentation and print the annotated operator tree, the
//! tactical decisions made while it ran, and the per-column compression
//! telemetry of every table it touched.
//!
//! Run with `cargo run --example explain_analyze`.

use std::sync::Arc;
use tde::encodings::{EncodedStream, BLOCK_SIZE};
use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::storage::{convert, Column, ColumnBuilder, Table};
use tde::types::{DataType, Width};
use tde::Query;

fn main() {
    // A sales table whose `day` column is dictionary-compressed: 30 000
    // rows over 3 000 distinct days. The first 2 000 days are consecutive
    // and the rest arrive with gaps, so when the query's invisible join
    // materializes the dictionary, the dynamic encoder first lands on an
    // affine encoding and is forced to re-encode mid-load — which the
    // trace records.
    let day_of = |i: i64| {
        if i < 2000 {
            9_000 + i
        } else {
            9_000 + i + (i - 2000) * 7
        }
    };
    let days: Vec<i64> = (0..30_000).map(|i| day_of(i % 3_000)).collect();
    let mut stream = EncodedStream::new_dict(Width::W8, true, 12);
    for c in days.chunks(BLOCK_SIZE) {
        stream.append_block(c).unwrap();
    }
    let mut day = Column::scalar("day", DataType::Date, stream);
    convert::dict_encoding_to_compression(&mut day);

    let mut qty = ColumnBuilder::new("qty", DataType::Integer, Default::default());
    for i in 0..30_000i64 {
        qty.append_i64(i % 97);
    }
    let table = Arc::new(Table::new("sales", vec![day, qty.finish().column]));

    // Total quantity per day over the dense prefix. The strategic
    // optimizer rewrites the filter on the compressed column into an
    // invisible join (the filter runs over the 3 000-entry dictionary,
    // not the 30 000 rows); the tactical optimizer then picks the join
    // implementation and hash strategy from the materialized metadata.
    let report = Query::scan(&table)
        .filter(Expr::cmp(CmpOp::Lt, Expr::col(0), Expr::int(9_100)))
        .aggregate(
            vec![0],
            vec![(AggFunc::Sum, 1, "total"), (AggFunc::Count, 1, "n")],
        )
        .explain_analyze();

    println!("{report}");
    println!("== json ==\n{}", report.to_json());

    // The same rollup shape without the dictionary rewrite, asked to
    // run morsel-parallel: the strategic optimizer wraps the pipeline
    // in a `Morsel` node, the tactical layer carves the scan into
    // decompression-block morsels, and the operator labels carry the
    // degree actually used.
    let parallel = Query::scan(&table)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(48)))
        .aggregate(
            vec![0],
            vec![(AggFunc::Sum, 1, "total"), (AggFunc::Count, 1, "n")],
        )
        .with_parallelism(4)
        .explain_analyze();
    println!("== morsel-parallel ==\n{parallel}");
}

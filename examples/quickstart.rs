//! Quickstart: import a flat file, save a single-file extract, query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::textscan::ImportOptions;
use tde::{Extract, Query};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("tde_quickstart");
    std::fs::create_dir_all(&dir)?;

    // 1. Make a small CSV (in real use this is your data file).
    let csv = dir.join("orders.csv");
    let mut text = String::from("day,region,qty,price\n");
    for i in 0..10_000u32 {
        text.push_str(&format!(
            "2024-{:02}-{:02},{},{},{}.{:02}\n",
            1 + (i / 900) % 12,
            1 + i % 28,
            ["east", "west", "north", "south"][(i % 4) as usize],
            i % 50,
            3 + i % 90,
            i % 100,
        ));
    }
    std::fs::write(&csv, text)?;

    // 2. Import: separator, header and types are inferred; columns are
    //    dynamically encoded, narrowed and annotated with metadata.
    let mut extract = Extract::new();
    let table = extract.import(
        &csv,
        &ImportOptions {
            table_name: "orders".into(),
            ..Default::default()
        },
    )?;
    println!("imported {} rows", table.row_count());
    for col in &table.columns {
        println!(
            "  {:<8} {:<9} encoding={:<6} width={} physical={}B logical={}B",
            col.name,
            col.dtype.to_string(),
            col.data.algorithm().to_string(),
            col.metadata.width,
            col.physical_size(),
            col.logical_size(),
        );
    }

    // 3. Save the whole extract as ONE file and load it back.
    let file = dir.join("orders.tde");
    extract.save(&file)?;
    println!(
        "\nsaved {} ({} bytes on disk, {} bytes logical)",
        file.display(),
        std::fs::metadata(&file)?.len(),
        extract.logical_size(),
    );
    let extract = Extract::load(&file)?;

    // 4. Query: qty statistics per region for busy days.
    let orders = extract.table("orders").unwrap();
    let query = Query::scan(&orders)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(2), Expr::int(25)))
        .aggregate(
            vec![1],
            vec![(AggFunc::Count, 2, "orders"), (AggFunc::Max, 2, "max_qty")],
        );
    println!("\nplan:\n{}", {
        let q = Query::scan(&orders)
            .filter(Expr::cmp(CmpOp::Ge, Expr::col(2), Expr::int(25)))
            .aggregate(
                vec![1],
                vec![(AggFunc::Count, 2, "orders"), (AggFunc::Max, 2, "max_qty")],
            );
        q.explain()
    });
    println!("region   orders  max_qty");
    let mut rows = query.rows();
    rows.sort_by_key(|r| r[0].to_string());
    for row in rows {
        println!("{:<8} {:<7} {}", row[0], row[1], row[2]);
    }
    Ok(())
}

//! Flat-file import at TPC-H scale: generate lineitem text with the
//! dbgen-style generator, import it with TextScan + FlowTable, and report
//! what the dynamic encoder and the §3.4 manipulations did to each column
//! — encodings chosen, widths narrowed, metadata extracted, heaps sorted,
//! re-encoding counts (the paper's §3.2 stability claim).
//!
//! ```sh
//! cargo run --release --example flat_file_import [scale-factor]
//! ```

use tde::datagen::tpch::{write_table, TpchTable};
use tde::encodings::metadata::Knowledge;
use tde::storage::Compression;
use tde::textscan::{import_file, ImportOptions};

fn knowledge(k: Knowledge) -> &'static str {
    match k {
        Knowledge::True => "yes",
        Knowledge::False => "no",
        Knowledge::Unknown => "?",
    }
}

fn main() -> std::io::Result<()> {
    let sf: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.01);
    let dir = std::env::temp_dir().join("tde_flat_file_import");
    std::fs::create_dir_all(&dir)?;

    println!("generating lineitem at SF {sf} ...");
    let path = write_table(&dir, TpchTable::Lineitem, sf, 42)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("  {} ({:.1} MB)\n", path.display(), bytes as f64 / 1e6);

    let schema: Vec<(String, tde::types::DataType)> = TpchTable::Lineitem
        .schema()
        .into_iter()
        .map(|(n, t)| (n.to_owned(), t))
        .collect();
    let start = std::time::Instant::now();
    let result = import_file(
        &path,
        &ImportOptions {
            schema: Some(schema),
            has_header: Some(false),
            table_name: "lineitem".into(),
            ..Default::default()
        },
    )?;
    let elapsed = start.elapsed();
    let table = &result.table;
    println!(
        "imported {} rows in {:.2}s ({:.1} MB/s)\n",
        table.row_count(),
        elapsed.as_secs_f64(),
        bytes as f64 / 1e6 / elapsed.as_secs_f64(),
    );

    println!(
        "{:<16} {:<9} {:<7} {:>5} {:>6} {:>6} {:>4} {:>6} {:>10} {:>10}",
        "column", "type", "enc", "width", "sorted", "dense", "card", "heap", "physical", "logical"
    );
    for (col, (_, re)) in table.columns.iter().zip(&result.reencodings) {
        let heap = match &col.compression {
            Compression::Heap { heap, sorted } => {
                format!("{}{}", heap.len(), if *sorted { "s" } else { "u" })
            }
            _ => "-".to_owned(),
        };
        println!(
            "{:<16} {:<9} {:<7} {:>5} {:>6} {:>6} {:>4} {:>6} {:>10} {:>10}{}",
            col.name,
            col.dtype.to_string(),
            col.data.algorithm().to_string(),
            col.metadata.width.to_string(),
            knowledge(col.metadata.sorted_asc),
            knowledge(col.metadata.dense),
            col.metadata
                .cardinality
                .map_or("-".into(), |c| c.to_string()),
            heap,
            col.physical_size(),
            col.logical_size(),
            if *re > 0 {
                format!("  ({re} re-encodings)")
            } else {
                String::new()
            },
        );
    }
    let total_re: u32 = result.reencodings.iter().map(|(_, r)| r).sum();
    println!(
        "\ntotals: physical {:.1} MB, logical {:.1} MB, flat file {:.1} MB",
        table.physical_size() as f64 / 1e6,
        table.logical_size() as f64 / 1e6,
        bytes as f64 / 1e6,
    );
    println!(
        "savings vs flat file: {:.0}%  |  vs logical: {:.0}%  |  mid-load encoding changes: {total_re}",
        100.0 * (1.0 - table.physical_size() as f64 / bytes as f64),
        100.0 * (1.0 - table.physical_size() as f64 / table.logical_size() as f64),
    );
    Ok(())
}

//! Paged storage: save an extract in the block-aligned v2 format, reopen
//! it lazily, and watch the buffer pool demand-load only the column
//! segments a query actually touches.
//!
//! Run with `cargo run --example paged_storage`.

use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::pager::save_v2;
use tde::storage::{ColumnBuilder, Database, EncodingPolicy, Table};
use tde::types::DataType;
use tde::{Extract, Query};

fn main() {
    // A wide table of the kind dashboards produce: 40 measure columns
    // plus one dimension, 100 000 rows.
    let rows = 100_000i64;
    let mut columns = Vec::new();
    for c in 0..40 {
        let name = format!("m{c}");
        let mut b = ColumnBuilder::new(&name, DataType::Integer, EncodingPolicy::default());
        for i in 0..rows {
            b.append_i64((i * (c + 3)) % 10_000);
        }
        columns.push(b.finish().column);
    }
    let mut dim = ColumnBuilder::new("region", DataType::Str, EncodingPolicy::default());
    for i in 0..rows {
        dim.append_str(Some(["north", "south", "east", "west"][i as usize % 4]));
    }
    columns.push(dim.finish().column);

    let mut db = Database::new();
    db.add_table(Table::new("metrics", columns));

    let dir = std::env::temp_dir().join("tde_example_paged");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.tde2");
    save_v2(&db, &path).unwrap();
    let file_len = std::fs::metadata(&path).unwrap().len();
    println!("wrote {} ({} bytes, 41 columns)", path.display(), file_len);

    // Opening reads only the footer and directory — no column data yet.
    let paged = Extract::open_paged(&path).unwrap();
    let metrics = paged.table("metrics").unwrap();
    let opened = paged.cache_snapshot();
    println!(
        "\nafter open:  {} of {} bytes resident ({} segment loads)",
        opened.bytes_cached, file_len, opened.misses
    );

    // A dashboard query touching 2 of the 41 columns. The executor
    // resolves them through the buffer pool; the other 39 stay on disk.
    let report = Query::scan_paged_columns(&metrics, &["region", "m7"])
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(5_000)))
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
        .explain_analyze();
    println!("\n{report}");

    let after = paged.cache_snapshot();
    println!(
        "after query: {} of {} bytes resident ({} segment loads: \
         m7 stream, region stream, region heap)",
        after.bytes_cached, file_len, after.misses
    );

    // Run it again: every lookup is a pool hit, nothing touches the disk.
    Query::scan_paged_columns(&metrics, &["region", "m7"])
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
        .rows();
    let warm = paged.cache_snapshot();
    println!(
        "warm rerun:  +{} loads, +{} hits — served from the pool",
        warm.misses - after.misses,
        warm.hits - after.hits
    );

    std::fs::remove_file(&path).ok();
}

//! A Flights "dashboard": the analytic queries a Tableau-style viz would
//! issue against an imported FAA on-time extract — showcasing invisible
//! joins on a dictionary-compressed date column, pushed-down computations
//! (month extraction on the date *domain*, not the rows), and
//! small-domain string aggregation with tactically chosen hashing.
//!
//! ```sh
//! cargo run --release --example flights_dashboard [rows]
//! ```

use std::sync::Arc;
use tde::datagen::flights;
use tde::design::{optimize_physical_design, DesignOptions};
use tde::exec::expr::{AggFunc, CmpOp, Expr, Func};
use tde::plan::logical::{InnerOps, LogicalPlan};
use tde::plan::physical;
use tde::textscan::{import_file, ImportOptions};
use tde::Query;

fn main() -> std::io::Result<()> {
    let rows: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(200_000);
    let dir = std::env::temp_dir().join("tde_flights_dashboard");
    std::fs::create_dir_all(&dir)?;
    let csv = dir.join("flights.csv");

    println!("generating {rows} flights ...");
    flights::write_file(&csv, rows, 7)?;

    let mut result = import_file(
        &csv,
        &ImportOptions {
            table_name: "flights".into(),
            ..Default::default()
        },
    )?;
    // Physical design pass: dictionary-compress the date dimension so date
    // calculations can run on the domain via invisible joins (§3.4.3).
    let changes = optimize_physical_design(&mut result.table, DesignOptions::default());
    println!("design pass: {changes:?}\n");
    let flights = Arc::new(result.table);

    // Dashboard panel 1: flights and worst delay per carrier.
    println!("== flights per carrier ==");
    let mut rows1 = Query::scan_columns(&flights, &["carrier", "arr_delay"])
        .aggregate(
            vec![0],
            vec![(AggFunc::Count, 1, "flights"), (AggFunc::Max, 1, "worst")],
        )
        .rows();
    rows1.sort_by_key(|r| std::cmp::Reverse(r[1].as_i64()));
    for r in rows1.iter().take(5) {
        println!(
            "  {:<3} {:>8} flights, worst arrival delay {:>4} min",
            r[0], r[1], r[2]
        );
    }

    // Dashboard panel 2: a date-range filter. The strategic optimizer
    // rewrites this into an invisible join with the range pushed onto the
    // date dictionary.
    let q = Query::scan_columns(&flights, &["flight_date", "dep_delay"]).filter(Expr::And(
        Box::new(Expr::cmp(
            CmpOp::Ge,
            Expr::col(0),
            Expr::Lit(tde::types::Value::date(2003, 1, 1)),
        )),
        Box::new(Expr::cmp(
            CmpOp::Lt,
            Expr::col(0),
            Expr::Lit(tde::types::Value::date(2004, 1, 1)),
        )),
    ));
    println!("\n== 2003 date-range plan (filter pushed onto the dictionary) ==");
    print!(
        "{}",
        Query::scan_columns(&flights, &["flight_date", "dep_delay"])
            .filter(Expr::And(
                Box::new(Expr::cmp(
                    CmpOp::Ge,
                    Expr::col(0),
                    Expr::Lit(tde::types::Value::date(2003, 1, 1)),
                )),
                Box::new(Expr::cmp(
                    CmpOp::Lt,
                    Expr::col(0),
                    Expr::Lit(tde::types::Value::date(2004, 1, 1)),
                )),
            ))
            .explain()
    );
    let n2003 = q.rows().len();
    println!("flights in 2003: {n2003}");

    // Dashboard panel 3: month extraction computed on the date *domain*
    // (a few thousand distinct days) instead of every row, then joined
    // back — the §3.4.3 motivation, built explicitly here.
    let date_col = flights.column_index("flight_date").unwrap();
    let plan = LogicalPlan::Aggregate {
        input: Box::new(LogicalPlan::ExpandJoin {
            outer: Box::new(Query::scan_columns(&flights, &["flight_date", "dep_delay"]).plan()),
            column: 0,
            source: (flights.clone(), date_col),
            inner: InnerOps {
                filter: None,
                compute: Some((
                    "month".into(),
                    Expr::Func(Func::Month, Box::new(Expr::col(1))),
                )),
            },
        }),
        group_by: vec![0],
        aggs: vec![tde::exec::aggregate::AggSpec::new(
            AggFunc::Count,
            1,
            "flights",
        )],
    };
    println!("\n== flights per month (month computed on the date domain) ==");
    let (schema, blocks) = physical::run(&plan);
    let mut rows3: Vec<(i64, i64)> = Vec::new();
    for b in &blocks {
        for r in 0..b.len {
            rows3.push((b.columns[0][r], b.columns[1][r]));
        }
    }
    let _ = schema;
    rows3.sort_unstable();
    for (m, n) in rows3 {
        println!("  month {m:>2}: {n:>8} flights");
    }
    Ok(())
}

//! # tde — Leveraging Compression in the Tableau Data Engine (reproduction)
//!
//! A from-scratch Rust implementation of the system described in
//! R. Wesley & P. Terlecki, *Leveraging Compression in the Tableau Data
//! Engine*, SIGMOD 2014: a read-only column store that operates directly
//! on lightweight-compressed data.
//!
//! ## What's inside
//!
//! * **Encodings** ([`encodings`]): bit-packed frame-of-reference, delta,
//!   dictionary, affine and run-length streams behind a common header
//!   whose fields support the paper's O(1)/O(2^bits) manipulations —
//!   type narrowing, dictionary remapping, metadata extraction.
//! * **Dynamic encoding** ([`encodings::dynamic`]): statistics-driven
//!   encoding choice with mid-load re-encoding on overflow.
//! * **Storage** ([`storage`]): string heaps with offset tokens, the heap
//!   accelerator, array/heap dictionary compression, and the single-file
//!   database format.
//! * **Paged storage** ([`pager`]): the block-aligned v2 file format
//!   whose directory records per-column segment extents, opened by
//!   reading only the directory; a sharded second-chance buffer pool
//!   demand-loads column segments on first touch and reports cache
//!   telemetry through `explain_analyze`.
//! * **Execution** ([`exec`]): a block-iterated Volcano engine —
//!   FlowTable with parallel per-column encoding, DictionaryTable
//!   invisible joins, IndexTable rank joins with IndexedScan, fetch
//!   joins, direct/perfect/collision hashing, ordered aggregation, and
//!   order-preserving Exchange.
//! * **Planning** ([`plan`]): the strategic rewrites (decompression as
//!   joins, predicate/computation pushdown) and the tactical lowering.
//! * **Import** ([`textscan`]): TextScan with separator sniffing, type
//!   inference, buffer-oriented parsers and parallel column cracking.
//! * **Workloads** ([`datagen`]): TPC-H dbgen-style, Flights-style and
//!   run-length table generators for the paper's experiments.
//!
//! ## Quickstart
//!
//! ```
//! use tde::{Extract, Query};
//! use tde::exec::expr::{AggFunc, CmpOp, Expr};
//! use tde::textscan::ImportOptions;
//!
//! // Import a flat file (types and header are inferred).
//! let dir = std::env::temp_dir().join("tde_doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let csv = dir.join("orders.csv");
//! std::fs::write(&csv, "day,qty\n2024-01-01,5\n2024-01-01,7\n2024-01-02,2\n").unwrap();
//!
//! let mut extract = Extract::new();
//! extract
//!     .import(&csv, &ImportOptions { table_name: "orders".into(), ..Default::default() })
//!     .unwrap();
//!
//! // Query it: total quantity per day.
//! let orders = extract.table("orders").unwrap();
//! let rows = Query::scan(&orders)
//!     .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
//!     .rows();
//! assert_eq!(rows.len(), 2);
//!
//! // Filters are pushed onto compressed representations automatically.
//! let rows = Query::scan(&orders)
//!     .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(5)))
//!     .rows();
//! assert_eq!(rows.len(), 2);
//! ```

pub use tde_core::{design, CacheReport, ExplainAnalyze, Extract, Query};

pub use tde_core::datagen;
pub use tde_core::encodings;
pub use tde_core::exec;
pub use tde_core::io;
pub use tde_core::obs;
pub use tde_core::pager;
pub use tde_core::plan;
pub use tde_core::storage;
pub use tde_core::textscan;
pub use tde_core::types;
pub use tde_delta as delta;

//! bench-gate — compare `BENCH_*.json` bench reports against committed
//! baselines and fail on tracked-metric regressions.
//!
//! ```text
//! bench-gate [--baseline DIR] [--current DIR] [--warn-only]
//! bench-gate --self-test [--baseline DIR]
//! ```
//!
//! Defaults: `--baseline bench_results/baselines`, `--current
//! bench_results`. Exit codes: 0 clean, 1 regression detected (or a
//! self-test failure), 2 usage or I/O error.
//!
//! `--self-test` injects a synthetic past-the-allowance wrong-way move on every tracked
//! metric of every baseline report and verifies the comparator flags all
//! of them — run with `!` in CI so a silently-broken gate fails the
//! build.

use std::path::PathBuf;
use std::process::ExitCode;

use tde_bench::gate;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-gate [--baseline DIR] [--current DIR] [--warn-only]\n\
         \x20      bench-gate --self-test [--baseline DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut baseline = PathBuf::from("bench_results/baselines");
    let mut current = PathBuf::from("bench_results");
    let mut warn_only = false;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(d) => baseline = PathBuf::from(d),
                None => return usage(),
            },
            "--current" => match args.next() {
                Some(d) => current = PathBuf::from(d),
                None => return usage(),
            },
            "--warn-only" => warn_only = true,
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if self_test {
        let scratch = gate::self_test_scratch();
        let result = gate::self_test(&baseline, &scratch);
        std::fs::remove_dir_all(&scratch).ok();
        return match result {
            Ok(caught) => {
                // The self-test *passing* means regressions were caught —
                // report it and exit non-zero, proving the gate can fail.
                println!("self-test: gate detected all {caught} injected regression(s)");
                ExitCode::from(1)
            }
            Err(e) => {
                eprintln!("self-test FAILED: {e}");
                ExitCode::from(2)
            }
        };
    }

    let outcome = match gate::compare_dirs(&baseline, &current) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            return ExitCode::from(2);
        }
    };
    for fig in &outcome.missing_figures {
        println!("note: no current report for baseline figure {fig:?}");
    }
    for m in &outcome.missing {
        println!("note: baseline metric {m} absent from current run");
    }
    for m in &outcome.new_metrics {
        println!("note: new metric {m} has no baseline yet");
    }
    let mut regressions = 0usize;
    for c in &outcome.comparisons {
        if c.regressed {
            regressions += 1;
            println!("REGRESSION {}", c.describe());
        } else {
            println!("ok         {}", c.describe());
        }
    }
    println!(
        "bench-gate: {} metric(s) compared, {regressions} regression(s)",
        outcome.comparisons.len()
    );
    if regressions > 0 && !warn_only {
        return ExitCode::from(1);
    }
    if regressions > 0 {
        println!("bench-gate: --warn-only set, not failing");
    }
    ExitCode::SUCCESS
}

//! `tde` command-line tool: create, inspect and peek into extracts.
//!
//! ```text
//! tde_cli import <flat-file> <extract.tde> [table-name]
//! tde_cli info   <extract.tde>
//! tde_cli head   <extract.tde> <table> [rows]
//! tde_cli gen    <tpch|flights|rle> <out-dir> [scale]
//! ```

use std::process::ExitCode;
use tde::storage::Compression;
use tde::textscan::ImportOptions;
use tde::Extract;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tde_cli import <flat-file> <extract.tde> [table-name]\n  \
         tde_cli info   <extract.tde>\n  \
         tde_cli head   <extract.tde> <table> [rows]\n  \
         tde_cli gen    <tpch|flights|rle> <out-dir> [scale]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("import") if args.len() >= 3 => cmd_import(&args[1], &args[2], args.get(3)),
        Some("info") if args.len() >= 2 => cmd_info(&args[1]),
        Some("head") if args.len() >= 3 => {
            let n = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(10);
            cmd_head(&args[1], &args[2], n)
        }
        Some("gen") if args.len() >= 3 => {
            let scale = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0.01);
            cmd_gen(&args[1], &args[2], scale)
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_import(input: &str, output: &str, table: Option<&String>) -> std::io::Result<()> {
    let name = table.cloned().unwrap_or_else(|| {
        std::path::Path::new(input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "imported".to_owned())
    });
    let mut extract = Extract::new();
    let start = std::time::Instant::now();
    let t = extract.import(
        input,
        &ImportOptions {
            table_name: name,
            ..Default::default()
        },
    )?;
    println!(
        "imported {} rows × {} columns in {:.2}s",
        t.row_count(),
        t.columns.len(),
        start.elapsed().as_secs_f64()
    );
    extract.save(output)?;
    println!(
        "wrote {output} ({} bytes; {} bytes logical — {:.0}% saved)",
        std::fs::metadata(output)?.len(),
        extract.logical_size(),
        100.0 * (1.0 - extract.physical_size() as f64 / extract.logical_size().max(1) as f64),
    );
    Ok(())
}

fn cmd_info(path: &str) -> std::io::Result<()> {
    let extract = Extract::load(path)?;
    for t in extract.tables() {
        println!("table {} ({} rows)", t.name, t.row_count());
        println!(
            "  {:<18} {:<9} {:<7} {:>5} {:>7} {:>12} {:>12}",
            "column", "type", "enc", "width", "card", "physical", "logical"
        );
        for c in &t.columns {
            let comp = match &c.compression {
                Compression::None => String::new(),
                Compression::Array { dictionary, sorted } => {
                    format!(
                        "  dict[{}]{}",
                        dictionary.len(),
                        if *sorted { " sorted" } else { "" }
                    )
                }
                Compression::Heap { heap, sorted } => {
                    format!(
                        "  heap[{}]{}",
                        heap.len(),
                        if *sorted { " sorted" } else { "" }
                    )
                }
            };
            println!(
                "  {:<18} {:<9} {:<7} {:>5} {:>7} {:>12} {:>12}{}",
                c.name,
                c.dtype.to_string(),
                c.data.algorithm().to_string(),
                c.metadata.width.to_string(),
                c.metadata
                    .cardinality
                    .map_or("-".to_owned(), |v| v.to_string()),
                c.physical_size(),
                c.logical_size(),
                comp,
            );
        }
    }
    Ok(())
}

fn cmd_head(path: &str, table: &str, n: u64) -> std::io::Result<()> {
    let extract = Extract::load(path)?;
    let t = extract.table(table).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("no table named {table}"),
        )
    })?;
    let names: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
    println!("{}", names.join(" | "));
    for row in 0..n.min(t.row_count()) {
        let vals: Vec<String> = t.columns.iter().map(|c| c.value(row).to_string()).collect();
        println!("{}", vals.join(" | "));
    }
    Ok(())
}

fn cmd_gen(kind: &str, out: &str, scale: f64) -> std::io::Result<()> {
    std::fs::create_dir_all(out)?;
    match kind {
        "tpch" => {
            let paths = tde::datagen::tpch::write_all(out, scale, 42)?;
            for p in paths {
                println!(
                    "wrote {} ({} bytes)",
                    p.display(),
                    std::fs::metadata(&p)?.len()
                );
            }
        }
        "flights" => {
            let rows = (scale * 1_000_000.0) as u64;
            let p = tde::datagen::flights::write_file(
                std::path::Path::new(out).join("flights.csv"),
                rows.max(1),
                7,
            )?;
            println!("wrote {} ({} rows)", p.display(), rows);
        }
        "rle" => {
            let rows = (scale * 1_000_000.0).max(1.0) as u64;
            let spec = tde::datagen::rle::RleTable::generate(rows, 99);
            let p = std::path::Path::new(out).join("rle.csv");
            let mut w = std::io::BufWriter::new(std::fs::File::create(&p)?);
            use std::io::Write;
            writeln!(w, "primary,secondary")?;
            let secondary = spec.secondary_runs();
            let mut s_iter = secondary.iter();
            let mut current = s_iter.next().copied();
            let mut left = current.map_or(0, |c| c.1);
            for (p_val, p_count) in spec.primary_runs() {
                for _ in 0..p_count {
                    while left == 0 {
                        current = s_iter.next().copied();
                        left = current.map_or(0, |c| c.1);
                    }
                    writeln!(w, "{},{}", p_val, current.unwrap().0)?;
                    left -= 1;
                }
            }
            println!("wrote {} ({} rows)", p.display(), rows);
        }
        other => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("unknown generator {other}"),
            ))
        }
    }
    Ok(())
}

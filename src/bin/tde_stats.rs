//! tde-stats — run a demo workload against the always-on metrics
//! registry and dump or serve the scrape.
//!
//! ```text
//! tde-stats dump [--format prometheus|json] [--no-workload]
//! tde-stats serve [--addr HOST:PORT] [--no-workload]
//! tde-stats trace [--out FILE]
//! ```
//!
//! `dump` prints the registry once; `serve` answers `GET /metrics`
//! (Prometheus text exposition), `GET /metrics.json`, `GET /spans`,
//! and `GET /trace/<query_id>` until killed; `trace` dumps the
//! recent-query timeline ring as a Chrome Trace Event Format file
//! (default `tde.trace.json`) loadable in Perfetto, self-validated
//! before writing. By default a small in-memory workload (scans,
//! filtered scans with kernel pushdown, aggregations, one
//! morsel-parallel aggregation) runs first so the scrape has signal;
//! `--no-workload` skips it, which is what an embedding process that
//! already ran queries wants. Span records for the workload's queries
//! are written as JSON lines to stderr when `--spans` is given.

use std::process::ExitCode;
use std::sync::Arc;

use tde::exec::expr::{AggFunc, CmpOp, Expr};
use tde::Query;
use tde_stats::http::StatsServer;

fn usage() -> ExitCode {
    eprintln!(
        "usage: tde-stats dump [--format prometheus|json] [--no-workload] [--spans]\n\
         \x20      tde-stats serve [--addr HOST:PORT] [--no-workload] [--spans]\n\
         \x20      tde-stats trace [--out FILE] [--no-workload] [--spans]"
    );
    ExitCode::from(2)
}

/// A small synthetic workload exercising scans, kernel pushdown and both
/// aggregation flavours, so every major instrument has samples.
fn run_workload() {
    use tde_storage::{ColumnBuilder, EncodingPolicy, Table};
    use tde_types::DataType;

    let mut k = ColumnBuilder::new("k", DataType::Integer, EncodingPolicy::default());
    let mut v = ColumnBuilder::new("v", DataType::Integer, EncodingPolicy::default());
    for i in 0..200_000i64 {
        k.append_i64(i / 2_000); // 100-value sorted key: RLE territory
        v.append_i64((i * 37) % 1_000);
    }
    let t = Arc::new(Table::new(
        "demo",
        vec![k.finish().column, v.finish().column],
    ));

    // Plain scan.
    let _ = Query::scan(&t).rows();
    // Filtered scan: the predicate lands on the compressed key column.
    let _ = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(0), Expr::int(90)))
        .rows();
    // Grouped aggregation.
    let _ = Query::scan(&t)
        .aggregate(vec![0], vec![(AggFunc::Sum, 1, "total")])
        .rows();
    // Grand total (run-aggregate candidate).
    let _ = Query::scan(&t)
        .aggregate(vec![], vec![(AggFunc::Sum, 0, "total")])
        .rows();
    // Morsel-parallel aggregation: puts worker tracks on the timeline.
    let _ = Query::scan(&t)
        .filter(Expr::cmp(CmpOp::Ge, Expr::col(1), Expr::int(500)))
        .aggregate(vec![0], vec![(AggFunc::Count, 1, "n")])
        .with_parallelism(4)
        .rows();
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return usage();
    };
    let mut format = "prometheus".to_owned();
    let mut addr = "127.0.0.1:9187".to_owned();
    let mut out = "tde.trace.json".to_owned();
    let mut workload = true;
    let mut spans = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "prometheus" || f == "json" => format = f,
                _ => return usage(),
            },
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => return usage(),
            },
            "--out" => match args.next() {
                Some(o) => out = o,
                None => return usage(),
            },
            "--no-workload" => workload = false,
            "--spans" => spans = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    if !tde::obs::metrics::enabled() {
        eprintln!("warning: metrics registry disabled (TDE_METRICS=0); the scrape will be empty");
    }
    if cmd == "trace" && !tde::obs::timeline::enabled() {
        eprintln!("warning: timeline tracing disabled (TDE_TRACE=0); the trace will be empty");
    }
    if spans {
        tde::obs::span::set_span_sink(Some(tde::obs::span::JsonLinesSink::new(Box::new(
            std::io::stderr(),
        ))));
    }
    if workload {
        run_workload();
    }

    match cmd.as_str() {
        "dump" => {
            let text = if format == "json" {
                tde_stats::json_text()
            } else {
                tde_stats::prometheus_text()
            };
            // Self-check: what we print must parse.
            let ok = if format == "json" {
                tde_stats::minijson::parse(&text).map(|_| ())
            } else {
                tde_stats::prometheus::validate(&text).map(|_| ())
            };
            if let Err(e) = ok {
                eprintln!("tde-stats: internal error, invalid output: {e}");
                return ExitCode::from(2);
            }
            print!("{text}");
            ExitCode::SUCCESS
        }
        "trace" => {
            let traces = tde::obs::timeline::recent_traces();
            if traces.is_empty() {
                eprintln!("tde-stats: trace ring is empty, writing an empty document");
            }
            let tef = tde_stats::tef::render_traces(&traces);
            // Self-check: what we write must pass the strict validator.
            match tde_stats::tef::validate_tef(&tef) {
                Ok(n) => eprintln!(
                    "tde-stats: {n} trace events from {} queries -> {out}",
                    traces.len()
                ),
                Err(e) => {
                    eprintln!("tde-stats: internal error, invalid trace output: {e}");
                    return ExitCode::from(2);
                }
            }
            if let Err(e) = std::fs::write(&out, tef) {
                eprintln!("tde-stats: write {out}: {e}");
                return ExitCode::from(2);
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let server = match StatsServer::bind(&addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tde-stats: bind {addr}: {e}");
                    return ExitCode::from(2);
                }
            };
            match server.local_addr() {
                Ok(a) => eprintln!("tde-stats: serving http://{a}/metrics and /metrics.json"),
                Err(_) => eprintln!("tde-stats: serving on {addr}"),
            }
            if let Err(e) = server.serve_forever() {
                eprintln!("tde-stats: {e}");
                return ExitCode::from(2);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
